"""Discrete-event simulation kernel.

This module implements a small, deterministic discrete-event simulator in
the style of ``simpy``: simulation *processes* are Python generators that
``yield`` :class:`Event` objects, and an :class:`Environment` advances a
virtual clock from one scheduled event to the next.

The kernel is the substrate for everything timed in this repository: the
simulated GCP cluster (``repro.cluster``), the Ray-like script runtime
(``repro.rayx``) and the Texera-like workflow engine (``repro.workflow``)
all run as processes on one :class:`Environment`, so their virtual
timings are directly comparable — which is exactly the comparison the
paper performs with wall-clock time on real clusters.

Design notes
------------
* Events fire in ``(time, priority, sequence)`` order; sequence numbers
  make the simulation fully deterministic regardless of hash seeds.
* A :class:`Process` is itself an :class:`Event` that triggers when its
  generator returns, so processes can wait on each other by yielding.
* Failures propagate: an event failed with an exception re-raises inside
  any process waiting on it, mirroring how ``ray.get`` re-raises task
  errors and how workflow engines surface operator errors.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, Generator, Iterable, List, Optional

from repro.errors import EmptySchedule, EventAlreadyTriggered, ProcessFailed
from repro.faults.injector import NULL_INJECTOR
from repro.obs.tracer import NULL_TRACER

__all__ = [
    "Environment",
    "Event",
    "Timeout",
    "Process",
    "AllOf",
    "AnyOf",
    "PENDING",
    "TRIGGERED",
    "PROCESSED",
]

#: Sentinel states for :attr:`Event.state`.
PENDING = "pending"
TRIGGERED = "triggered"
PROCESSED = "processed"

#: Event priorities; URGENT events at equal timestamps fire first.
URGENT = 0
NORMAL = 1


class Event:
    """A condition that will be *triggered* at some virtual time.

    Events carry an optional ``value`` (delivered to waiting processes)
    or an exception (re-raised in waiting processes).  Callbacks attached
    via :meth:`add_callback` run when the environment processes the
    event.
    """

    def __init__(self, env: "Environment") -> None:
        self.env = env
        self.state = PENDING
        self.value: Any = None
        self.exception: Optional[BaseException] = None
        self._callbacks: List[Callable[["Event"], None]] = []

    # -- state ------------------------------------------------------------

    @property
    def triggered(self) -> bool:
        """True once the event has been succeeded or failed."""
        return self.state != PENDING

    @property
    def ok(self) -> bool:
        """True if the event triggered successfully (no exception)."""
        return self.triggered and self.exception is None

    # -- triggering -------------------------------------------------------

    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with ``value``."""
        if self.triggered:
            raise EventAlreadyTriggered(f"{self!r} already triggered")
        self.value = value
        self.state = TRIGGERED
        self.env._schedule(self, delay=0.0)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event with an exception.

        The exception re-raises inside every process waiting on this
        event.
        """
        if self.triggered:
            raise EventAlreadyTriggered(f"{self!r} already triggered")
        if not isinstance(exception, BaseException):
            raise TypeError("fail() requires an exception instance")
        self.exception = exception
        self.state = TRIGGERED
        self.env._schedule(self, delay=0.0)
        return self

    def add_callback(self, callback: Callable[["Event"], None]) -> None:
        """Run ``callback(event)`` when the event is processed.

        If the event has already been processed the callback runs
        immediately; this makes waiting on completed events safe.
        """
        if self.state == PROCESSED:
            callback(self)
        else:
            self._callbacks.append(callback)

    def _process_callbacks(self) -> None:
        self.state = PROCESSED
        callbacks, self._callbacks = self._callbacks, []
        for callback in callbacks:
            callback(self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} state={self.state}>"


class Timeout(Event):
    """An event that triggers ``delay`` virtual seconds in the future."""

    def __init__(self, env: "Environment", delay: float, value: Any = None) -> None:
        if delay < 0:
            raise ValueError(f"negative timeout delay: {delay}")
        super().__init__(env)
        self.delay = delay
        self.value = value
        self.state = TRIGGERED
        env._schedule(self, delay=delay)
        tracer = env.tracer
        if tracer.enabled:
            tracer.metrics.counter("sim.timeouts").inc()
            if tracer.capture_timeouts:
                tracer.record_complete(
                    "timeout",
                    category="sim.timeout",
                    start_s=env.now,
                    end_s=env.now + delay,
                )


class Process(Event):
    """A running simulation process wrapping a generator.

    The generator yields :class:`Event` objects; each yield suspends the
    process until the event triggers, at which point the event's value is
    sent back in (or its exception thrown in).  When the generator
    returns, the process — being itself an event — triggers with the
    generator's return value, so other processes can wait on it.
    """

    def __init__(self, env: "Environment", generator: Generator) -> None:
        if not hasattr(generator, "send"):
            raise TypeError(f"Process requires a generator, got {generator!r}")
        super().__init__(env)
        self._generator = generator
        self.name = getattr(generator, "__name__", "process")
        self._span = (
            env.tracer.start(self.name, category="sim.process")
            if env.tracer.enabled
            else None
        )
        # Bootstrap: resume on the next kernel step at the current time.
        bootstrap = Event(env)
        bootstrap.succeed()
        bootstrap.add_callback(self._resume)

    def _resume(self, event: Event) -> None:
        """Advance the generator by one step with ``event``'s outcome."""
        try:
            if event.exception is not None:
                target = self._generator.throw(event.exception)
            else:
                target = self._generator.send(event.value)
        except StopIteration as stop:
            if self._span is not None:
                self.env.tracer.end(self._span, status="ok")
            self.succeed(stop.value)
            return
        except BaseException as exc:  # noqa: BLE001 - must capture all
            # A process that dies forwards its exception to waiters; if
            # nothing ever waits, Environment.run() raises at the end.
            if self._span is not None:
                self.env.tracer.end(
                    self._span, status="failed", error=type(exc).__name__
                )
            self.env._note_failure(self, exc)
            self.fail(exc)
            return
        if not isinstance(target, Event):
            raise ProcessFailed(
                f"process {self.name!r} yielded {target!r}, expected an Event"
            )
        target.add_callback(self._resume)


class ConditionValue:
    """Mapping-like view of the events collected by a condition."""

    def __init__(self, events: List[Event]) -> None:
        self.events = events

    def values(self) -> List[Any]:
        """Values of the triggered events, in construction order."""
        return [event.value for event in self.events if event.triggered]

    def __len__(self) -> int:
        return len([event for event in self.events if event.triggered])


class AllOf(Event):
    """Triggers when *all* child events have triggered.

    Fails fast if any child fails, propagating the first exception —
    matching ``ray.get(list_of_refs)`` semantics.
    """

    def __init__(self, env: "Environment", events: Iterable[Event]) -> None:
        super().__init__(env)
        self._events = list(events)
        self._pending = len(self._events)
        if self._pending == 0:
            self.succeed(ConditionValue([]))
            return
        for event in self._events:
            event.add_callback(self._check)

    def _check(self, event: Event) -> None:
        if self.triggered:
            return
        if event.exception is not None:
            self.fail(event.exception)
            return
        self._pending -= 1
        if self._pending == 0:
            self.succeed(ConditionValue(self._events))


class AnyOf(Event):
    """Triggers when *any* child event triggers (value = that event)."""

    def __init__(self, env: "Environment", events: Iterable[Event]) -> None:
        super().__init__(env)
        self._events = list(events)
        if not self._events:
            raise ValueError("AnyOf requires at least one event")
        for event in self._events:
            event.add_callback(self._check)

    def _check(self, event: Event) -> None:
        if self.triggered:
            return
        if event.exception is not None:
            self.fail(event.exception)
        else:
            self.succeed(event)


class Environment:
    """The simulation environment: virtual clock plus event queue."""

    def __init__(self, initial_time: float = 0.0) -> None:
        self._now = float(initial_time)
        self._queue: List = []
        self._sequence = itertools.count()
        self._failures: List[ProcessFailure] = []
        #: Observability hook; clusters replace this with an enabled
        #: tracer (``repro.obs``).  The null default records nothing and
        #: leaves event scheduling — hence all timings — untouched.
        self.tracer = NULL_TRACER
        #: Fault-injection hook (``repro.faults``); clusters replace
        #: this with an active injector.  The null default answers every
        #: check benignly and charges no virtual time.
        self.faults = NULL_INJECTOR

    @property
    def now(self) -> float:
        """Current virtual time in seconds."""
        return self._now

    # -- factories ---------------------------------------------------------

    def event(self) -> Event:
        """Create a fresh, untriggered event."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create an event that triggers ``delay`` seconds from now."""
        return Timeout(self, delay, value)

    def process(self, generator: Generator) -> Process:
        """Start a new process from ``generator`` and return it."""
        return Process(self, generator)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        """Event that triggers when every event in ``events`` has."""
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        """Event that triggers when the first event in ``events`` does."""
        return AnyOf(self, events)

    # -- scheduling --------------------------------------------------------

    def _schedule(self, event: Event, delay: float, priority: int = NORMAL) -> None:
        heapq.heappush(
            self._queue, (self._now + delay, priority, next(self._sequence), event)
        )

    def _note_failure(self, process: Process, exc: BaseException) -> None:
        self._failures.append(ProcessFailure(process, exc))

    def step(self) -> None:
        """Process the next scheduled event, advancing the clock."""
        if not self._queue:
            raise EmptySchedule("no scheduled events remain")
        when, _priority, _seq, event = heapq.heappop(self._queue)
        self._now = when
        if self.tracer.enabled:
            self.tracer.metrics.counter("sim.events").inc()
        event._process_callbacks()

    def peek(self) -> float:
        """Virtual time of the next scheduled event (inf if none)."""
        if not self._queue:
            return float("inf")
        return self._queue[0][0]

    def run(self, until: Optional[Any] = None) -> Any:
        """Run the simulation.

        ``until`` may be:

        * ``None`` — run until no events remain;
        * a number — run until the clock reaches that virtual time;
        * an :class:`Event` — run until that event is processed, then
          return its value (or re-raise its exception).
        """
        if isinstance(until, Event):
            return self._run_until_event(until)
        if until is not None:
            deadline = float(until)
            if deadline < self._now:
                raise ValueError(f"until={deadline} is in the past (now={self._now})")
            while self._queue and self._queue[0][0] <= deadline:
                self.step()
            self._now = max(self._now, deadline) if self._queue else self._now
            self._raise_orphan_failures()
            return None
        while self._queue:
            self.step()
        self._raise_orphan_failures()
        return None

    def _run_until_event(self, until: Event) -> Any:
        done = [False]

        def mark(_event: Event) -> None:
            done[0] = True

        until.add_callback(mark)
        while not done[0]:
            if not self._queue:
                self._abort_open_process_spans()
                raise EmptySchedule(
                    "simulation ran out of events before the awaited event "
                    "triggered (deadlock?)"
                )
            self.step()
        # The awaited event consumed any failure it represents.
        self._failures = [f for f in self._failures if f.process is not until]
        if until.exception is not None:
            self._abort_open_process_spans()
            raise until.exception
        return until.value

    def _abort_open_process_spans(self) -> None:
        """Close span records of processes abandoned by a dying run.

        When the awaited process fails (or the schedule deadlocks),
        sibling processes are never resumed again; without this their
        spans would stay open forever and a traced failing run would
        leak unbalanced spans.
        """
        if not self.tracer.enabled:
            return
        for span in self.tracer.spans:
            if span.category == "sim.process" and not span.finished:
                self.tracer.end(span, status="aborted")

    def _raise_orphan_failures(self) -> None:
        """Surface crashes of processes nothing ever waited on.

        The Zen of Python: errors should never pass silently.
        """
        unwaited = [f for f in self._failures if f.process.state == PROCESSED]
        self._failures = [f for f in self._failures if f not in unwaited]
        if unwaited:
            first = unwaited[0]
            raise ProcessFailed(
                f"process {first.process.name!r} failed with "
                f"{type(first.exc).__name__}: {first.exc}"
            ) from first.exc


class ProcessFailure:
    """Record of a process that terminated with an exception."""

    def __init__(self, process: Process, exc: BaseException) -> None:
        self.process = process
        self.exc = exc
