"""Discrete-event simulation kernel.

This module implements a small, deterministic discrete-event simulator in
the style of ``simpy``: simulation *processes* are Python generators that
``yield`` :class:`Event` objects, and an :class:`Environment` advances a
virtual clock from one scheduled event to the next.

The kernel is the substrate for everything timed in this repository: the
simulated GCP cluster (``repro.cluster``), the Ray-like script runtime
(``repro.rayx``) and the Texera-like workflow engine (``repro.workflow``)
all run as processes on one :class:`Environment`, so their virtual
timings are directly comparable — which is exactly the comparison the
paper performs with wall-clock time on real clusters.

Design notes
------------
* Events fire in ``(time, priority, sequence)`` order; sequence numbers
  make the simulation fully deterministic regardless of hash seeds.
* A :class:`Process` is itself an :class:`Event` that triggers when its
  generator returns, so processes can wait on each other by yielding.
* Failures propagate: an event failed with an exception re-raises inside
  any process waiting on it, mirroring how ``ray.get`` re-raises task
  errors and how workflow engines surface operator errors.

Fast-path notes (see ``docs/performance.md``)
---------------------------------------------
The kernel is the innermost loop of every experiment, so it trades a
little uniformity for speed while keeping the event order *exactly* the
``(time, priority, sequence)`` order of a single heap:

* Hot objects are ``__slots__``-ed and the sequence counter is a plain
  integer inlined at each schedule site.
* Scheduled entries are split across three internally sorted queues
  whose heads are compared on every pop, so the global minimum is
  unchanged: ``_immediate`` (zero-delay NORMAL entries from
  ``succeed``/``fail``/process bootstrap — appended in ``(time, seq)``
  order by construction because the clock is monotonic), ``_tail``
  (schedule-time entries that arrive in non-decreasing order, the
  common case for homogeneous timeouts) and ``_queue`` (a real heap for
  everything that arrives out of order).
* ``Event._callbacks`` is ``None`` until the first waiter, a bare
  callable for the (dominant) single-waiter case and a list only when
  two or more callbacks attach.
* The tracer hook is dormant-by-default: ``Environment.tracer`` is a
  property whose setter caches ``tracer.enabled`` into ``_tracing`` and
  rebinds ``step`` to a fast or traced variant, so the dormant run loop
  performs no per-event tracer attribute walks.
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Any, Callable, Generator, Iterable, List, Optional

from repro.errors import EmptySchedule, EventAlreadyTriggered, ProcessFailed
from repro.faults.injector import NULL_INJECTOR
from repro.obs.tracer import NULL_TRACER

__all__ = [
    "Environment",
    "Event",
    "Timeout",
    "Process",
    "AllOf",
    "AnyOf",
    "PENDING",
    "TRIGGERED",
    "PROCESSED",
]

#: Sentinel states for :attr:`Event.state`.  These exact module-level
#: strings are the only values ever assigned, so the kernel may compare
#: them with ``is``.
PENDING = "pending"
TRIGGERED = "triggered"
PROCESSED = "processed"

#: Event priorities; URGENT events at equal timestamps fire first.
URGENT = 0
NORMAL = 1

_INF = float("inf")


class Event:
    """A condition that will be *triggered* at some virtual time.

    Events carry an optional ``value`` (delivered to waiting processes)
    or an exception (re-raised in waiting processes).  Callbacks attached
    via :meth:`add_callback` run when the environment processes the
    event.
    """

    __slots__ = ("env", "state", "value", "exception", "_callbacks")

    def __init__(self, env: "Environment") -> None:
        self.env = env
        self.state = PENDING
        self.value: Any = None
        self.exception: Optional[BaseException] = None
        #: ``None`` | a single callable | a list of callables.
        self._callbacks: Any = None

    # -- state ------------------------------------------------------------

    @property
    def triggered(self) -> bool:
        """True once the event has been succeeded or failed."""
        return self.state is not PENDING

    @property
    def ok(self) -> bool:
        """True if the event triggered successfully (no exception)."""
        return self.state is not PENDING and self.exception is None

    # -- triggering -------------------------------------------------------

    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with ``value``."""
        if self.state is not PENDING:
            raise EventAlreadyTriggered(f"{self!r} already triggered")
        self.value = value
        self.state = TRIGGERED
        env = self.env
        seq = env._sequence = env._sequence + 1
        env._immediate.append((env._now, NORMAL, seq, self))
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event with an exception.

        The exception re-raises inside every process waiting on this
        event.
        """
        if self.state is not PENDING:
            raise EventAlreadyTriggered(f"{self!r} already triggered")
        if not isinstance(exception, BaseException):
            raise TypeError("fail() requires an exception instance")
        self.exception = exception
        self.state = TRIGGERED
        env = self.env
        seq = env._sequence = env._sequence + 1
        env._immediate.append((env._now, NORMAL, seq, self))
        return self

    def add_callback(self, callback: Callable[["Event"], None]) -> None:
        """Run ``callback(event)`` when the event is processed.

        If the event has already been processed the callback runs
        immediately; this makes waiting on completed events safe.
        """
        if self.state is PROCESSED:
            callback(self)
            return
        current = self._callbacks
        if current is None:
            self._callbacks = callback
        elif type(current) is list:
            current.append(callback)
        else:
            self._callbacks = [current, callback]

    def _process_callbacks(self) -> None:
        self.state = PROCESSED
        callbacks, self._callbacks = self._callbacks, None
        if callbacks is not None:
            if type(callbacks) is list:
                for callback in callbacks:
                    callback(self)
            else:
                callbacks(self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} state={self.state}>"


class Timeout(Event):
    """An event that triggers ``delay`` virtual seconds in the future."""

    __slots__ = ("delay",)

    def __init__(self, env: "Environment", delay: float, value: Any = None) -> None:
        if delay < 0:
            raise ValueError(f"negative timeout delay: {delay}")
        # Direct initialisation (no super().__init__ chain): timeouts are
        # the single most-allocated object in the simulator.
        self.env = env
        self.delay = delay
        self.value = value
        self.exception = None
        self._callbacks = None
        self.state = TRIGGERED
        seq = env._sequence = env._sequence + 1
        entry = (env._now + delay, NORMAL, seq, self)
        tail = env._tail
        if tail and entry < tail[-1]:
            heapq.heappush(env._queue, entry)
        else:
            tail.append(entry)
        if env._tracing:
            tracer = env._tracer
            tracer.metrics.counter("sim.timeouts").inc()
            if tracer.capture_timeouts:
                tracer.record_complete(
                    "timeout",
                    category="sim.timeout",
                    start_s=env._now,
                    end_s=env._now + delay,
                )


class Process(Event):
    """A running simulation process wrapping a generator.

    The generator yields :class:`Event` objects; each yield suspends the
    process until the event triggers, at which point the event's value is
    sent back in (or its exception thrown in).  When the generator
    returns, the process — being itself an event — triggers with the
    generator's return value, so other processes can wait on it.
    """

    __slots__ = ("_generator", "name", "_span", "_resume_cb")

    def __init__(self, env: "Environment", generator: Generator) -> None:
        if not hasattr(generator, "send"):
            raise TypeError(f"Process requires a generator, got {generator!r}")
        self.env = env
        self.state = PENDING
        self.value = None
        self.exception = None
        self._callbacks = None
        self._generator = generator
        self.name = getattr(generator, "__name__", "process")
        #: The bound resume callback, allocated once instead of per yield.
        self._resume_cb = self._resume
        self._span = (
            env._tracer.start(self.name, category="sim.process")
            if env._tracing
            else None
        )
        # Bootstrap: resume on the next kernel step at the current time.
        bootstrap = Event(env)
        bootstrap.state = TRIGGERED
        bootstrap._callbacks = self._resume_cb
        seq = env._sequence = env._sequence + 1
        env._immediate.append((env._now, NORMAL, seq, bootstrap))

    def _resume(self, event: Event) -> None:
        """Advance the generator by one step with ``event``'s outcome."""
        generator = self._generator
        while True:
            try:
                if event.exception is None:
                    target = generator.send(event.value)
                else:
                    target = generator.throw(event.exception)
            except StopIteration as stop:
                if self._span is not None:
                    self.env._tracer.end(self._span, status="ok")
                self.value = stop.value
                self.state = TRIGGERED
                env = self.env
                seq = env._sequence = env._sequence + 1
                env._immediate.append((env._now, NORMAL, seq, self))
                return
            except BaseException as exc:  # noqa: BLE001 - must capture all
                # A process that dies forwards its exception to waiters; if
                # nothing ever waits, Environment.run() raises at the end.
                if self._span is not None:
                    self.env._tracer.end(
                        self._span, status="failed", error=type(exc).__name__
                    )
                env = self.env
                env._failures.append(ProcessFailure(self, exc))
                self.exception = exc
                self.state = TRIGGERED
                seq = env._sequence = env._sequence + 1
                env._immediate.append((env._now, NORMAL, seq, self))
                return
            try:
                state = target.state
            except AttributeError:
                state = None
            if state is PENDING or state is TRIGGERED:
                callback = self._resume_cb
                current = target._callbacks
                if current is None:
                    target._callbacks = callback
                elif type(current) is list:
                    current.append(callback)
                else:
                    target._callbacks = [current, callback]
                return
            if state is PROCESSED:
                # Waiting on an already-completed event: resume again
                # immediately (iteratively — the seed recursed here).
                event = target
                continue
            raise ProcessFailed(
                f"process {self.name!r} yielded {target!r}, expected an Event"
            )


class ConditionValue:
    """Mapping-like view of the events collected by a condition."""

    __slots__ = ("events",)

    def __init__(self, events: List[Event]) -> None:
        self.events = events

    def values(self) -> List[Any]:
        """Values of the triggered events, in construction order."""
        return [event.value for event in self.events if event.triggered]

    def __len__(self) -> int:
        return len([event for event in self.events if event.triggered])


class AllOf(Event):
    """Triggers when *all* child events have triggered.

    Fails fast if any child fails, propagating the first exception —
    matching ``ray.get(list_of_refs)`` semantics.
    """

    __slots__ = ("_events", "_pending")

    def __init__(self, env: "Environment", events: Iterable[Event]) -> None:
        super().__init__(env)
        self._events = list(events)
        self._pending = len(self._events)
        if self._pending == 0:
            self.succeed(ConditionValue([]))
            return
        for event in self._events:
            event.add_callback(self._check)

    def _check(self, event: Event) -> None:
        if self.state is not PENDING:
            return
        if event.exception is not None:
            self.fail(event.exception)
            return
        self._pending -= 1
        if self._pending == 0:
            self.succeed(ConditionValue(self._events))


class AnyOf(Event):
    """Triggers when *any* child event triggers (value = that event)."""

    __slots__ = ("_events",)

    def __init__(self, env: "Environment", events: Iterable[Event]) -> None:
        super().__init__(env)
        self._events = list(events)
        if not self._events:
            raise ValueError("AnyOf requires at least one event")
        for event in self._events:
            event.add_callback(self._check)

    def _check(self, event: Event) -> None:
        if self.state is not PENDING:
            return
        if event.exception is not None:
            self.fail(event.exception)
        else:
            self.succeed(event)


class Environment:
    """The simulation environment: virtual clock plus event queue."""

    def __init__(self, initial_time: float = 0.0) -> None:
        self._now = float(initial_time)
        #: Heap for entries that arrive out of order.
        self._queue: List = []
        #: Deque of schedule-time entries appended in sorted order (the
        #: common case: repeated equal delays produce monotonic keys).
        self._tail: deque = deque()
        #: Deque of zero-delay NORMAL entries; monotonic by construction
        #: because the clock never moves backwards and sequence numbers
        #: only grow.
        self._immediate: deque = deque()
        #: Inlined sequence counter (a plain int, incremented at each
        #: schedule site; the seed used ``itertools.count``).
        self._sequence = 0
        self._failures: List[ProcessFailure] = []
        #: Observability hook; clusters replace this with an enabled
        #: tracer (``repro.obs``).  The null default records nothing and
        #: leaves event scheduling — hence all timings — untouched.
        self._tracer = NULL_TRACER
        self._tracing = False
        #: Fault-injection hook (``repro.faults``); clusters replace
        #: this with an active injector.  The null default answers every
        #: check benignly and charges no virtual time.
        self._faults = NULL_INJECTOR
        #: ``step`` is rebound by the ``tracer`` setter: the dormant
        #: default pays zero tracer overhead per event.
        self.step = self._step_fast

    # -- observability / fault hooks ---------------------------------------

    @property
    def tracer(self):
        return self._tracer

    @tracer.setter
    def tracer(self, tracer) -> None:
        self._tracer = tracer
        self._tracing = bool(tracer.enabled)
        self.step = self._step_traced if self._tracing else self._step_fast

    @property
    def faults(self):
        return self._faults

    @faults.setter
    def faults(self, injector) -> None:
        self._faults = injector

    @property
    def now(self) -> float:
        """Current virtual time in seconds."""
        return self._now

    # -- factories ---------------------------------------------------------

    def event(self) -> Event:
        """Create a fresh, untriggered event."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create an event that triggers ``delay`` seconds from now."""
        return Timeout(self, delay, value)

    def process(self, generator: Generator) -> Process:
        """Start a new process from ``generator`` and return it."""
        return Process(self, generator)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        """Event that triggers when every event in ``events`` has."""
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        """Event that triggers when the first event in ``events`` does."""
        return AnyOf(self, events)

    # -- scheduling --------------------------------------------------------

    def _schedule(self, event: Event, delay: float, priority: int = NORMAL) -> None:
        seq = self._sequence = self._sequence + 1
        if delay == 0.0 and priority == NORMAL:
            self._immediate.append((self._now, NORMAL, seq, event))
            return
        entry = (self._now + delay, priority, seq, event)
        tail = self._tail
        if tail and entry < tail[-1]:
            heapq.heappush(self._queue, entry)
        else:
            tail.append(entry)

    def _pop_entry(self):
        """Pop the globally smallest ``(time, priority, seq, event)`` entry.

        All three queues are internally sorted, so comparing their heads
        yields exactly the order a single heap would produce.  Returns
        ``None`` when no events remain.
        """
        immediate = self._immediate
        tail = self._tail
        queue = self._queue
        best = None
        source = 0
        if immediate:
            best = immediate[0]
            source = 1
        if tail and (best is None or tail[0] < best):
            best = tail[0]
            source = 2
        if queue and (best is None or queue[0] < best):
            source = 3
        if source == 1:
            return immediate.popleft()
        if source == 2:
            return tail.popleft()
        if source == 3:
            return heapq.heappop(queue)
        return None

    def _note_failure(self, process: Process, exc: BaseException) -> None:
        self._failures.append(ProcessFailure(process, exc))

    def _step_fast(self) -> None:
        """Process the next scheduled event, advancing the clock."""
        entry = self._pop_entry()
        if entry is None:
            raise EmptySchedule("no scheduled events remain")
        self._now = entry[0]
        event = entry[3]
        event.state = PROCESSED
        callbacks = event._callbacks
        if callbacks is not None:
            event._callbacks = None
            if type(callbacks) is list:
                for callback in callbacks:
                    callback(event)
            else:
                callbacks(event)

    def _step_traced(self) -> None:
        """Like :meth:`_step_fast`, plus per-event tracer accounting."""
        entry = self._pop_entry()
        if entry is None:
            raise EmptySchedule("no scheduled events remain")
        self._now = entry[0]
        self._tracer.metrics.counter("sim.events").inc()
        event = entry[3]
        event.state = PROCESSED
        callbacks = event._callbacks
        if callbacks is not None:
            event._callbacks = None
            if type(callbacks) is list:
                for callback in callbacks:
                    callback(event)
            else:
                callbacks(event)

    def peek(self) -> float:
        """Virtual time of the next scheduled event (inf if none)."""
        when = _INF
        if self._immediate:
            when = self._immediate[0][0]
        if self._tail and self._tail[0][0] < when:
            when = self._tail[0][0]
        if self._queue and self._queue[0][0] < when:
            when = self._queue[0][0]
        return when

    def _drain(self, deadline: float, until: Optional[Event]) -> bool:
        """The fused run loop: pop-and-process until a stop condition.

        Stops when ``until`` (if given) has been processed, when the next
        event lies beyond ``deadline``, or when no events remain.
        Returns True only in the ran-out-of-events case.
        """
        immediate = self._immediate
        tail = self._tail
        queue = self._queue
        heappop = heapq.heappop
        inc = (
            self._tracer.metrics.counter("sim.events").inc
            if self._tracing
            else None
        )
        while until is None or until.state is not PROCESSED:
            # Select the globally smallest head among the three queues.
            if immediate:
                entry = immediate[0]
                if tail and tail[0] < entry:
                    entry = tail[0]
                    if queue and queue[0] < entry:
                        entry = heappop(queue)
                    else:
                        tail.popleft()
                elif queue and queue[0] < entry:
                    entry = heappop(queue)
                else:
                    immediate.popleft()
            elif tail:
                entry = tail[0]
                if queue and queue[0] < entry:
                    entry = heappop(queue)
                else:
                    tail.popleft()
            elif queue:
                entry = heappop(queue)
            else:
                return True
            when = entry[0]
            if when > deadline:
                # Put it back (relocating to the heap preserves order).
                heapq.heappush(queue, entry)
                return False
            self._now = when
            event = entry[3]
            event.state = PROCESSED
            if inc is not None:
                inc()
            callbacks = event._callbacks
            if callbacks is not None:
                event._callbacks = None
                if type(callbacks) is list:
                    for callback in callbacks:
                        callback(event)
                else:
                    callbacks(event)
        return False

    def run(self, until: Optional[Any] = None) -> Any:
        """Run the simulation.

        ``until`` may be:

        * ``None`` — run until no events remain;
        * a number — run until the clock reaches that virtual time;
        * an :class:`Event` — run until that event is processed, then
          return its value (or re-raise its exception).
        """
        if until is None:
            self._drain(_INF, None)
            self._raise_orphan_failures()
            return None
        if isinstance(until, Event):
            return self._run_until_event(until)
        deadline = float(until)
        if deadline < self._now:
            raise ValueError(f"until={deadline} is in the past (now={self._now})")
        self._drain(deadline, None)
        if deadline > self._now:
            # The docstring promise: the clock reaches the deadline even
            # when the schedule drains early (the seed left it behind).
            self._now = deadline
        self._raise_orphan_failures()
        return None

    def _run_until_event(self, until: Event) -> Any:
        if until.state is not PROCESSED:
            drained = self._drain(_INF, until)
            if drained:
                self._abort_open_process_spans()
                raise EmptySchedule(
                    "simulation ran out of events before the awaited event "
                    "triggered (deadlock?)"
                )
        # The awaited event consumed any failure it represents.
        self._failures = [f for f in self._failures if f.process is not until]
        if until.exception is not None:
            self._abort_open_process_spans()
            raise until.exception
        return until.value

    def _abort_open_process_spans(self) -> None:
        """Close span records of processes abandoned by a dying run.

        When the awaited process fails (or the schedule deadlocks),
        sibling processes are never resumed again; without this their
        spans would stay open forever and a traced failing run would
        leak unbalanced spans.
        """
        if not self._tracing:
            return
        for span in self._tracer.spans:
            if span.category == "sim.process" and not span.finished:
                self._tracer.end(span, status="aborted")

    def _raise_orphan_failures(self) -> None:
        """Surface crashes of processes nothing ever waited on.

        The Zen of Python: errors should never pass silently.
        """
        unwaited = [f for f in self._failures if f.process.state is PROCESSED]
        self._failures = [f for f in self._failures if f not in unwaited]
        if unwaited:
            first = unwaited[0]
            raise ProcessFailed(
                f"process {first.process.name!r} failed with "
                f"{type(first.exc).__name__}: {first.exc}"
            ) from first.exc


class ProcessFailure:
    """Record of a process that terminated with an exception."""

    __slots__ = ("process", "exc")

    def __init__(self, process: Process, exc: BaseException) -> None:
        self.process = process
        self.exc = exc
