"""Shared resources for simulation processes.

Two primitives cover everything the engines need:

* :class:`Resource` — a counted resource (e.g. the vCPUs of a cluster
  node).  Processes ``yield resource.request(n)`` to acquire ``n`` units
  and call :meth:`Resource.release` when done.  Waiters are served FIFO,
  which keeps simulations deterministic.
* :class:`Store` — a (optionally bounded) FIFO queue of items, used as
  the data channel between pipelined workflow operators.  Bounded stores
  give the workflow engine natural *back-pressure*: a fast upstream
  operator blocks when the channel fills, exactly like a real pipelined
  dataflow engine.

Waiter events (:class:`ResourceRequest`, :class:`StorePut`,
:class:`StoreGet`) support :meth:`~ResourceRequest.cancel`: abort paths
(fault kills, engine restarts) call it so a dead process's pending
request neither blocks the FIFO head nor — once granted — leaks
capacity into nothing.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, List, Optional

from repro.sim.core import NORMAL, PENDING, PROCESSED, TRIGGERED, Environment, Event

__all__ = ["Resource", "Store", "ResourceRequest", "StorePut", "StoreGet"]


class ResourceRequest(Event):
    """Pending acquisition of ``amount`` units of a :class:`Resource`."""

    __slots__ = ("resource", "amount")

    def __init__(self, resource: "Resource", amount: int) -> None:
        super().__init__(resource.env)
        self.resource = resource
        self.amount = amount

    def cancel(self) -> None:
        """Withdraw this request on behalf of a dead waiter.

        * Still queued: leave the FIFO so it cannot block requests
          behind it.
        * Already granted (triggered or processed): return the units —
          nobody will ever release them otherwise.

        Idempotent; safe to call from ``except``/``finally`` blocks of
        aborted processes.
        """
        resource = self.resource
        if resource is None:
            return
        self.resource = None
        state = self.state
        if state is PENDING:
            try:
                resource._waiters.remove(self)
            except ValueError:
                pass
            self._callbacks = None
            return
        # Granted: the dead process can never release; do it here.
        self._callbacks = None
        resource.in_use -= self.amount
        resource._serve()


class Resource:
    """A counted, FIFO-fair resource such as a pool of CPU cores."""

    __slots__ = ("env", "capacity", "in_use", "_waiters")

    def __init__(self, env: Environment, capacity: int) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.env = env
        self.capacity = capacity
        self.in_use = 0
        self._waiters: Deque[ResourceRequest] = deque()

    @property
    def available(self) -> int:
        """Units currently free."""
        return self.capacity - self.in_use

    def request(self, amount: int = 1) -> ResourceRequest:
        """Return an event that triggers once ``amount`` units are held.

        Requests larger than the total capacity can never be satisfied
        and raise ``ValueError`` immediately rather than deadlocking.
        """
        if amount < 1:
            raise ValueError(f"amount must be >= 1, got {amount}")
        if amount > self.capacity:
            raise ValueError(
                f"requested {amount} units but capacity is {self.capacity}"
            )
        req = ResourceRequest(self, amount)
        self._waiters.append(req)
        self._serve()
        return req

    def release(self, amount: int = 1) -> None:
        """Return ``amount`` units to the pool and wake waiters."""
        if amount < 1:
            raise ValueError(f"amount must be >= 1, got {amount}")
        if amount > self.in_use:
            raise ValueError(
                f"releasing {amount} units but only {self.in_use} are in use"
            )
        self.in_use -= amount
        self._serve()

    def _serve(self) -> None:
        # Strict FIFO: a large request at the head blocks smaller ones
        # behind it. This avoids starvation and keeps runs deterministic.
        waiters = self._waiters
        while waiters and waiters[0].amount <= self.capacity - self.in_use:
            req = waiters.popleft()
            self.in_use += req.amount
            # Inline req.succeed(req) — requests in the FIFO are always
            # still pending (cancel removes them eagerly).
            req.value = req
            req.state = TRIGGERED
            env = req.env
            seq = env._sequence = env._sequence + 1
            env._immediate.append((env._now, NORMAL, seq, req))


class StorePut(Event):
    """Pending insertion of ``item`` into a bounded :class:`Store`."""

    __slots__ = ("store", "item")

    def __init__(self, store: "Store", item: Any) -> None:
        super().__init__(store.env)
        self.store = store
        self.item = item

    def cancel(self) -> None:
        """Withdraw a pending put on behalf of a dead producer.

        Only queued puts are withdrawn; once the item entered the store
        the put has completed and cancelling is a no-op (the data is
        already visible to consumers).  Idempotent.
        """
        store = self.store
        if store is None:
            return
        self.store = None
        if self.state is PENDING:
            try:
                store._putters.remove(self)
            except ValueError:
                pass
            self._callbacks = None


class StoreGet(Event):
    """Pending removal of the next item from a :class:`Store`."""

    __slots__ = ("store",)

    def __init__(self, store: "Store") -> None:
        super().__init__(store.env)
        self.store = store

    def cancel(self) -> None:
        """Withdraw this get on behalf of a dead consumer.

        * Still queued: leave the getter FIFO (no head-of-line block).
        * Already granted but not yet consumed: put the item back at the
          *front* of the buffer — it was the oldest item, so restoring
          it at the head preserves FIFO order for live consumers.

        Idempotent; safe to call from abort paths.
        """
        store = self.store
        if store is None:
            return
        self.store = None
        state = self.state
        if state is PENDING:
            try:
                store._getters.remove(self)
            except ValueError:
                pass
            self._callbacks = None
            return
        if state is PROCESSED and self._callbacks is None:
            # Already delivered to a (then-live) consumer; nothing to
            # restore.
            return
        self._callbacks = None
        store.items.appendleft(self.value)
        self.value = None
        store._serve()


class Store:
    """A FIFO item queue with optional capacity (back-pressure)."""

    __slots__ = ("env", "capacity", "items", "_putters", "_getters")

    def __init__(self, env: Environment, capacity: Optional[int] = None) -> None:
        if capacity is not None and capacity < 1:
            raise ValueError(f"capacity must be >= 1 or None, got {capacity}")
        self.env = env
        self.capacity = capacity
        self.items: Deque[Any] = deque()
        self._putters: Deque[StorePut] = deque()
        self._getters: Deque[StoreGet] = deque()

    def __len__(self) -> int:
        return len(self.items)

    @property
    def is_full(self) -> bool:
        """True when a bounded store has reached capacity."""
        return self.capacity is not None and len(self.items) >= self.capacity

    def put(self, item: Any) -> StorePut:
        """Event that triggers once ``item`` has entered the store."""
        event = StorePut(self, item)
        self._putters.append(event)
        self._serve()
        return event

    def get(self) -> StoreGet:
        """Event that triggers with the next item once one is present."""
        event = StoreGet(self)
        self._getters.append(event)
        self._serve()
        return event

    def _serve(self) -> None:
        env = self.env
        immediate = env._immediate
        items = self.items
        putters = self._putters
        getters = self._getters
        capacity = self.capacity
        while True:
            progressed = False
            # Move queued puts into the buffer while space remains.
            while putters and (capacity is None or len(items) < capacity):
                put = putters.popleft()
                items.append(put.item)
                # Inline put.succeed() — queued puts are always pending.
                put.state = TRIGGERED
                seq = env._sequence = env._sequence + 1
                immediate.append((env._now, NORMAL, seq, put))
                progressed = True
            # Hand buffered items to waiting getters.
            while getters and items:
                get = getters.popleft()
                # Inline get.succeed(items.popleft()).
                get.value = items.popleft()
                get.state = TRIGGERED
                seq = env._sequence = env._sequence + 1
                immediate.append((env._now, NORMAL, seq, get))
                progressed = True
            if not progressed:
                return


def acquire(resource: Resource, amount: int = 1):
    """Generator helper: ``yield from acquire(res, n)`` inside a process.

    Returns the request so the caller can later ``resource.release(n)``.
    Provided for readability; direct ``yield resource.request(n)`` is
    equally valid.
    """
    request = resource.request(amount)
    yield request
    return request


def drain(store: Store) -> List[Any]:
    """Immediately empty a store's buffered items (no simulation time)."""
    items = list(store.items)
    store.items.clear()
    store._serve()
    return items
