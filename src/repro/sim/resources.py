"""Shared resources for simulation processes.

Two primitives cover everything the engines need:

* :class:`Resource` — a counted resource (e.g. the vCPUs of a cluster
  node).  Processes ``yield resource.request(n)`` to acquire ``n`` units
  and call :meth:`Resource.release` when done.  Waiters are served FIFO,
  which keeps simulations deterministic.
* :class:`Store` — a (optionally bounded) FIFO queue of items, used as
  the data channel between pipelined workflow operators.  Bounded stores
  give the workflow engine natural *back-pressure*: a fast upstream
  operator blocks when the channel fills, exactly like a real pipelined
  dataflow engine.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, List, Optional

from repro.sim.core import Environment, Event

__all__ = ["Resource", "Store", "ResourceRequest"]


class ResourceRequest(Event):
    """Pending acquisition of ``amount`` units of a :class:`Resource`."""

    def __init__(self, resource: "Resource", amount: int) -> None:
        super().__init__(resource.env)
        self.resource = resource
        self.amount = amount


class Resource:
    """A counted, FIFO-fair resource such as a pool of CPU cores."""

    def __init__(self, env: Environment, capacity: int) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.env = env
        self.capacity = capacity
        self.in_use = 0
        self._waiters: Deque[ResourceRequest] = deque()

    @property
    def available(self) -> int:
        """Units currently free."""
        return self.capacity - self.in_use

    def request(self, amount: int = 1) -> ResourceRequest:
        """Return an event that triggers once ``amount`` units are held.

        Requests larger than the total capacity can never be satisfied
        and raise ``ValueError`` immediately rather than deadlocking.
        """
        if amount < 1:
            raise ValueError(f"amount must be >= 1, got {amount}")
        if amount > self.capacity:
            raise ValueError(
                f"requested {amount} units but capacity is {self.capacity}"
            )
        req = ResourceRequest(self, amount)
        self._waiters.append(req)
        self._serve()
        return req

    def release(self, amount: int = 1) -> None:
        """Return ``amount`` units to the pool and wake waiters."""
        if amount < 1:
            raise ValueError(f"amount must be >= 1, got {amount}")
        if amount > self.in_use:
            raise ValueError(
                f"releasing {amount} units but only {self.in_use} are in use"
            )
        self.in_use -= amount
        self._serve()

    def _serve(self) -> None:
        # Strict FIFO: a large request at the head blocks smaller ones
        # behind it. This avoids starvation and keeps runs deterministic.
        while self._waiters and self._waiters[0].amount <= self.available:
            req = self._waiters.popleft()
            self.in_use += req.amount
            req.succeed(req)


class StorePut(Event):
    """Pending insertion of ``item`` into a bounded :class:`Store`."""

    def __init__(self, store: "Store", item: Any) -> None:
        super().__init__(store.env)
        self.item = item


class StoreGet(Event):
    """Pending removal of the next item from a :class:`Store`."""

    def __init__(self, store: "Store") -> None:
        super().__init__(store.env)


class Store:
    """A FIFO item queue with optional capacity (back-pressure)."""

    def __init__(self, env: Environment, capacity: Optional[int] = None) -> None:
        if capacity is not None and capacity < 1:
            raise ValueError(f"capacity must be >= 1 or None, got {capacity}")
        self.env = env
        self.capacity = capacity
        self.items: Deque[Any] = deque()
        self._putters: Deque[StorePut] = deque()
        self._getters: Deque[StoreGet] = deque()

    def __len__(self) -> int:
        return len(self.items)

    @property
    def is_full(self) -> bool:
        """True when a bounded store has reached capacity."""
        return self.capacity is not None and len(self.items) >= self.capacity

    def put(self, item: Any) -> StorePut:
        """Event that triggers once ``item`` has entered the store."""
        event = StorePut(self, item)
        self._putters.append(event)
        self._serve()
        return event

    def get(self) -> StoreGet:
        """Event that triggers with the next item once one is present."""
        event = StoreGet(self)
        self._getters.append(event)
        self._serve()
        return event

    def _serve(self) -> None:
        progressed = True
        while progressed:
            progressed = False
            # Move queued puts into the buffer while space remains.
            while self._putters and not self.is_full:
                put = self._putters.popleft()
                self.items.append(put.item)
                put.succeed()
                progressed = True
            # Hand buffered items to waiting getters.
            while self._getters and self.items:
                get = self._getters.popleft()
                get.succeed(self.items.popleft())
                progressed = True


def acquire(resource: Resource, amount: int = 1):
    """Generator helper: ``yield from acquire(res, n)`` inside a process.

    Returns the request so the caller can later ``resource.release(n)``.
    Provided for readability; direct ``yield resource.request(n)`` is
    equally valid.
    """
    request = resource.request(amount)
    yield request
    return request


def drain(store: Store) -> List[Any]:
    """Immediately empty a store's buffered items (no simulation time)."""
    items = list(store.items)
    store.items.clear()
    store._serve()
    return items
