"""Labelled counters, gauges and histograms for the observability layer.

A :class:`MetricsRegistry` is a flat, deterministic store of numeric
instruments keyed by ``(kind, name, labels)``.  Instrumentation sites
across the simulators record into it:

* ``serialize.bytes{codec=..., direction=...}`` — bytes through each codec;
* ``network.bytes{link=...}`` — bytes moved per node pair;
* ``node.busy_s{node=...}`` — CPU-busy virtual seconds per node;
* ``objectstore.put.bytes`` / ``objectstore.get.bytes`` — store traffic;
* ``workflow.batches{link=...}`` — batches per workflow channel;
* ``workflow.queue_depth{link=...}`` — channel occupancy histogram.

Everything is plain Python with zero dependencies; values are exact
(ints stay ints) so tests can assert equality against independent sums.
"""

from __future__ import annotations

from typing import Any, Dict, Iterator, List, Optional, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_METRICS",
]

LabelKey = Tuple[Tuple[str, str], ...]


def _label_key(labels: Dict[str, Any]) -> LabelKey:
    """Canonical, hashable form of a label set."""
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def _format_labels(labels: LabelKey) -> str:
    if not labels:
        return ""
    return "{" + ",".join(f"{k}={v}" for k, v in labels) + "}"


class Counter:
    """A monotonically increasing numeric total."""

    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: LabelKey = ()) -> None:
        self.name = name
        self.labels = labels
        self.value: float = 0

    def add(self, amount: float) -> None:
        """Add ``amount`` (must be >= 0) to the running total."""
        if amount < 0:
            raise ValueError(f"counter {self.name!r}: negative add {amount}")
        self.value += amount

    def inc(self) -> None:
        """Add one."""
        self.value += 1

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Counter {self.name}{_format_labels(self.labels)}={self.value}>"


class Gauge:
    """A point-in-time value; remembers its high-water mark."""

    __slots__ = ("name", "labels", "value", "max_value")

    def __init__(self, name: str, labels: LabelKey = ()) -> None:
        self.name = name
        self.labels = labels
        self.value: float = 0
        self.max_value: float = 0

    def set(self, value: float) -> None:
        self.value = value
        if value > self.max_value:
            self.max_value = value

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Gauge {self.name}{_format_labels(self.labels)}={self.value}>"


class Histogram:
    """Streaming summary of observed values (count/sum/min/max)."""

    __slots__ = ("name", "labels", "count", "total", "min", "max")

    def __init__(self, name: str, labels: LabelKey = ()) -> None:
        self.name = name
        self.labels = labels
        self.count = 0
        self.total: float = 0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def record(self, value: float) -> None:
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    @property
    def mean(self) -> Optional[float]:
        if self.count == 0:
            return None
        return self.total / self.count

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Histogram {self.name}{_format_labels(self.labels)} "
            f"n={self.count} mean={self.mean}>"
        )


class MetricsRegistry:
    """Get-or-create store of instruments, deterministic iteration order."""

    __slots__ = ("_instruments",)

    def __init__(self) -> None:
        self._instruments: Dict[Tuple[str, str, LabelKey], Any] = {}

    # -- get-or-create -----------------------------------------------------

    def counter(self, name: str, **labels: Any) -> Counter:
        return self._get_or_create("counter", Counter, name, labels)

    def gauge(self, name: str, **labels: Any) -> Gauge:
        return self._get_or_create("gauge", Gauge, name, labels)

    def histogram(self, name: str, **labels: Any) -> Histogram:
        return self._get_or_create("histogram", Histogram, name, labels)

    def _get_or_create(self, kind: str, cls: type, name: str, labels: Dict) -> Any:
        # Unlabelled metrics (the majority of traced-path calls) skip
        # the sort/stringify canonicalisation entirely.
        key = (kind, name, _label_key(labels) if labels else ())
        instrument = self._instruments.get(key)
        if instrument is None:
            instrument = cls(name, key[2])
            self._instruments[key] = instrument
        return instrument

    # -- queries -----------------------------------------------------------

    def instruments(self, name: Optional[str] = None) -> Iterator[Any]:
        """All instruments, optionally filtered by metric name."""
        for (_kind, metric_name, _labels), instrument in self._instruments.items():
            if name is None or metric_name == name:
                yield instrument

    def counters(self, name: str) -> List[Counter]:
        """Every labelled counter series of ``name``."""
        return [
            inst
            for (kind, metric, _l), inst in self._instruments.items()
            if kind == "counter" and metric == name
        ]

    def total(self, name: str) -> float:
        """Sum of a counter metric across all label sets (0 if absent)."""
        return sum(counter.value for counter in self.counters(name))

    def value(self, name: str, **labels: Any) -> float:
        """A single counter series' value (0 if the series is absent)."""
        key = ("counter", name, _label_key(labels))
        instrument = self._instruments.get(key)
        return instrument.value if instrument is not None else 0

    def snapshot(self) -> Dict[str, Dict[str, Any]]:
        """JSON-serializable dump: ``{kind: {"name{labels}": value}}``."""
        out: Dict[str, Dict[str, Any]] = {
            "counters": {},
            "gauges": {},
            "histograms": {},
        }
        for (kind, name, labels), inst in sorted(
            self._instruments.items(), key=lambda item: item[0]
        ):
            series = name + _format_labels(labels)
            if kind == "counter":
                out["counters"][series] = inst.value
            elif kind == "gauge":
                out["gauges"][series] = {"value": inst.value, "max": inst.max_value}
            else:
                out["histograms"][series] = {
                    "count": inst.count,
                    "total": inst.total,
                    "min": inst.min,
                    "max": inst.max,
                }
        return out

    def clear(self) -> None:
        self._instruments.clear()


class _NullInstrument:
    """Shared sink for the null registry: accepts and discards records."""

    __slots__ = ()
    name = ""
    labels: LabelKey = ()
    value = 0
    max_value = 0
    count = 0
    total = 0
    min = None
    max = None
    mean = None

    def add(self, amount: float) -> None:
        pass

    def inc(self) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def record(self, value: float) -> None:
        pass


class _NullMetricsRegistry(MetricsRegistry):
    """Registry that records nothing (backs the null tracer)."""

    _SINK = _NullInstrument()

    def counter(self, name: str, **labels: Any) -> Counter:  # type: ignore[override]
        return self._SINK  # type: ignore[return-value]

    def gauge(self, name: str, **labels: Any) -> Gauge:  # type: ignore[override]
        return self._SINK  # type: ignore[return-value]

    def histogram(self, name: str, **labels: Any) -> Histogram:  # type: ignore[override]
        return self._SINK  # type: ignore[return-value]


#: Singleton null registry used by the null tracer.
NULL_METRICS = _NullMetricsRegistry()
