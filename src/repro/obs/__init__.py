"""Observability for the simulated platforms: tracing, metrics, reports.

The paper's claims are claims about *where time goes* — pipelining
overlap, object-store serialization for the 1.59 GB BART model,
cross-language bridge costs.  This package turns those buried charges
into queryable data:

* :mod:`repro.obs.tracer` — virtual-clock :class:`Span` collection with
  a globally installable or per-run injectable :class:`Tracer` (the
  default is the no-op :data:`NULL_TRACER`, so untraced runs pay
  nothing and keep bit-identical timings);
* :mod:`repro.obs.metrics` — labelled counters/gauges/histograms
  (bytes per codec, network bytes per link, CPU-busy per node, ...);
* :mod:`repro.obs.export` — Chrome ``trace_event`` JSON (load it in
  ``chrome://tracing`` or Perfetto) and plain-text time breakdowns.

Quick use::

    from repro.obs import tracing, format_breakdown, write_chrome_trace

    with tracing() as tracer:
        run = run_gotta_script(fresh_cluster(), paragraphs)
    print(format_breakdown(tracer))
    write_chrome_trace(tracer, "gotta.json")
"""

from repro.obs.export import (
    DEFAULT_EXCLUDED_CATEGORIES,
    STORE_AND_SERIALIZATION_CATEGORIES,
    CategoryStat,
    RunBreakdown,
    breakdown,
    chrome_trace,
    chrome_trace_events,
    format_breakdown,
    write_chrome_trace,
)
from repro.obs.metrics import (
    NULL_METRICS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.tracer import (
    NULL_TRACER,
    NullTracer,
    Span,
    TraceRun,
    Tracer,
    current_tracer,
    install_tracer,
    tracing,
    uninstall_tracer,
)

__all__ = [
    "Span",
    "Tracer",
    "NullTracer",
    "TraceRun",
    "NULL_TRACER",
    "install_tracer",
    "uninstall_tracer",
    "current_tracer",
    "tracing",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_METRICS",
    "CategoryStat",
    "RunBreakdown",
    "breakdown",
    "chrome_trace",
    "chrome_trace_events",
    "format_breakdown",
    "write_chrome_trace",
    "DEFAULT_EXCLUDED_CATEGORIES",
    "STORE_AND_SERIALIZATION_CATEGORIES",
]
