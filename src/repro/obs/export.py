"""Trace exporters: Chrome ``trace_event`` JSON and text breakdowns.

Two consumers are served:

* :func:`write_chrome_trace` emits the ``traceEvents`` JSON understood
  by ``chrome://tracing`` and https://ui.perfetto.dev — every span
  becomes a complete ("X") event, each run becomes a process lane and
  each cluster node a thread lane, so sequential runs recorded by one
  tracer do not overlap even though each restarts the virtual clock;
* :func:`format_breakdown` renders a hierarchical plain-text report of
  where each run's virtual time went, grouped by span category and
  name — the profiler view the experiment harness and the ``trace``
  CLI subcommand print.

Category totals sum span durations, so with parallelism a category can
exceed the run's wall clock (it is CPU-seconds-like, not wall share);
percentages are still reported against wall time because that is the
question the paper's figures ask ("what fraction of the run is the
object store?").
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, List, Sequence, Tuple

from repro.obs.tracer import Span, Tracer

__all__ = [
    "chrome_trace_events",
    "chrome_trace",
    "write_chrome_trace",
    "CategoryStat",
    "RunBreakdown",
    "breakdown",
    "format_breakdown",
]

#: Categories hidden from the text breakdown by default: ``sim.process``
#: spans wrap nearly every other span (tasks, transfers, instances all
#: run as simulation processes), so showing them would double-count.
DEFAULT_EXCLUDED_CATEGORIES = ("sim.process", "sim.timeout")

#: Categories the breakdown sums into its "object-store + serialization"
#: headline (the paper's Fig 13d mechanism).
STORE_AND_SERIALIZATION_CATEGORIES = ("objectstore", "serialization")


# ---------------------------------------------------------------------------
# Chrome trace_event JSON
# ---------------------------------------------------------------------------


def chrome_trace_events(tracer: Tracer) -> List[Dict[str, Any]]:
    """Flatten a tracer into Chrome ``trace_event`` dicts.

    Each run maps to one ``pid``; within a run, each node (or, for
    node-less spans, the category) maps to one ``tid``.  Timestamps are
    virtual microseconds.
    """
    events: List[Dict[str, Any]] = []
    lanes: Dict[Tuple[int, str], int] = {}
    for run in tracer.runs:
        events.append(
            {
                "name": "process_name",
                "ph": "M",
                "pid": run.run_id,
                "tid": 0,
                "ts": 0,
                "args": {"name": run.label},
            }
        )
    for span in tracer.spans:
        if not span.finished:
            continue
        lane_name = span.node or span.category or "main"
        lane_key = (span.run_id, lane_name)
        tid = lanes.get(lane_key)
        if tid is None:
            tid = len([k for k in lanes if k[0] == span.run_id]) + 1
            lanes[lane_key] = tid
            events.append(
                {
                    "name": "thread_name",
                    "ph": "M",
                    "pid": span.run_id,
                    "tid": tid,
                    "ts": 0,
                    "args": {"name": lane_name},
                }
            )
        event: Dict[str, Any] = {
            "name": span.name,
            "cat": span.category or "span",
            "ph": "X",
            "ts": span.start_s * 1e6,
            "dur": (span.end_s - span.start_s) * 1e6,
            "pid": span.run_id,
            "tid": tid,
        }
        args = dict(span.attrs)
        if span.parent_id is not None:
            args["parent_span"] = span.parent_id
        if args:
            event["args"] = args
        events.append(event)
    return events


def chrome_trace(tracer: Tracer) -> Dict[str, Any]:
    """The full Chrome trace document (events + metrics side-channel)."""
    return {
        "traceEvents": chrome_trace_events(tracer),
        "displayTimeUnit": "ms",
        "otherData": {
            "clock": "virtual",
            "runs": {str(run.run_id): run.label for run in tracer.runs},
            "metrics": tracer.metrics.snapshot(),
        },
    }


def write_chrome_trace(tracer: Tracer, path: Any) -> Path:
    """Serialize :func:`chrome_trace` to ``path``; returns the path."""
    target = Path(path)
    target.write_text(json.dumps(chrome_trace(tracer)), encoding="utf-8")
    return target


# ---------------------------------------------------------------------------
# Text time-breakdown report
# ---------------------------------------------------------------------------


class CategoryStat:
    """Aggregated span time for one category within one run."""

    __slots__ = ("category", "total_s", "count", "by_name")

    def __init__(self, category: str) -> None:
        self.category = category
        self.total_s = 0.0
        self.count = 0
        self.by_name: Dict[str, Tuple[float, int]] = {}

    def add(self, span: Span) -> None:
        duration = span.duration_s
        self.total_s += duration
        self.count += 1
        total, count = self.by_name.get(span.name, (0.0, 0))
        self.by_name[span.name] = (total + duration, count + 1)


class RunBreakdown:
    """Where one run's virtual time went, by span category."""

    def __init__(self, run_id: int, label: str) -> None:
        self.run_id = run_id
        self.label = label
        self.wall_s = 0.0
        self.categories: Dict[str, CategoryStat] = {}

    def category_total(self, category: str) -> float:
        stat = self.categories.get(category)
        return stat.total_s if stat is not None else 0.0

    def fraction(self, categories: Sequence[str]) -> float:
        """Combined category time as a fraction of the run's wall time."""
        if self.wall_s <= 0:
            return 0.0
        return sum(self.category_total(c) for c in categories) / self.wall_s

    @property
    def store_and_serialization_fraction(self) -> float:
        """Fraction of wall time in object-store + serialization spans."""
        return self.fraction(STORE_AND_SERIALIZATION_CATEGORIES)


def breakdown(tracer: Tracer) -> List[RunBreakdown]:
    """Aggregate the tracer's finished spans per run and category."""
    runs: Dict[int, RunBreakdown] = {
        run.run_id: RunBreakdown(run.run_id, run.label) for run in tracer.runs
    }
    extents: Dict[int, Tuple[float, float]] = {}
    for span in tracer.spans:
        if not span.finished:
            continue
        run = runs.get(span.run_id)
        if run is None:  # span recorded before any attach
            run = runs[span.run_id] = RunBreakdown(span.run_id, f"run-{span.run_id}")
        category = span.category or "(uncategorized)"
        stat = run.categories.get(category)
        if stat is None:
            stat = run.categories[category] = CategoryStat(category)
        stat.add(span)
        lo, hi = extents.get(span.run_id, (span.start_s, span.end_s))
        extents[span.run_id] = (min(lo, span.start_s), max(hi, span.end_s))
    for run_id, (lo, hi) in extents.items():
        runs[run_id].wall_s = hi - lo
    return [runs[run_id] for run_id in sorted(runs)]


def format_breakdown(
    tracer: Tracer,
    exclude_categories: Sequence[str] = DEFAULT_EXCLUDED_CATEGORIES,
    top_names: int = 6,
    include_empty_runs: bool = False,
) -> str:
    """Render the per-run time breakdown as indented text.

    ``top_names`` bounds how many span names are listed under each
    category (largest first); ``exclude_categories`` hides the
    double-counting kernel categories by default.
    """
    lines: List[str] = []
    for run in breakdown(tracer):
        visible = {
            name: stat
            for name, stat in run.categories.items()
            if name not in exclude_categories
        }
        if not visible and not include_empty_runs:
            continue
        lines.append(f"run {run.run_id} · {run.label} — wall {run.wall_s:.2f}s virtual")
        for name, stat in sorted(
            visible.items(), key=lambda item: -item[1].total_s
        ):
            share = 100.0 * stat.total_s / run.wall_s if run.wall_s > 0 else 0.0
            lines.append(
                f"  {name:<24} {stat.total_s:>10.2f}s  {share:5.1f}%"
                f"  ({stat.count} span{'s' if stat.count != 1 else ''})"
            )
            ranked = sorted(stat.by_name.items(), key=lambda item: -item[1][0])
            for sub_name, (total, count) in ranked[:top_names]:
                lines.append(f"    {sub_name:<22} {total:>10.2f}s  (x{count})")
            if len(ranked) > top_names:
                rest = sum(total for _n, (total, _c) in ranked[top_names:])
                lines.append(
                    f"    ... {len(ranked) - top_names} more {rest:>10.2f}s"
                )
        store_frac = run.store_and_serialization_fraction
        if store_frac > 0:
            lines.append(
                "  object-store + serialization: "
                f"{100.0 * store_frac:.1f}% of wall time"
            )
        lines.append("")
    if not lines:
        return "(no finished spans recorded)"
    return "\n".join(lines).rstrip()
