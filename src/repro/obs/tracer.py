"""Virtual-clock span tracing.

A :class:`Span` is one named interval of *virtual* time (the simulated
cluster's clock, not wall time) with a category, an optional cluster
node, free-form attributes and an optional parent span.  A
:class:`Tracer` collects spans plus a :class:`MetricsRegistry` of
counters, and can either be

* **installed globally** — :func:`install_tracer` makes every cluster
  built afterwards (``build_cluster`` / ``fresh_cluster``) record into
  it; or
* **injected per-run** — pass ``tracer=`` to ``build_cluster``.

Because several clusters may run sequentially against one tracer (an
experiment measures many configurations), the tracer tracks *runs*: a
new run begins every time a cluster attaches its environment, and every
span remembers which run it belongs to.  Exporters use this to keep the
runs' overlapping virtual clocks apart.

The default tracer everywhere is :data:`NULL_TRACER`, whose
``enabled`` flag is False; instrumentation sites guard on it, so an
untraced simulation does no bookkeeping and — crucially — charges
*exactly* the same virtual time as before the observability layer
existed (a regression test asserts bit-identical timings).
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Any, Dict, Iterator, List, Optional

from repro.obs.metrics import NULL_METRICS, MetricsRegistry

__all__ = [
    "Span",
    "Tracer",
    "NullTracer",
    "TraceRun",
    "NULL_TRACER",
    "install_tracer",
    "uninstall_tracer",
    "current_tracer",
    "tracing",
]


class Span:
    """One interval of virtual time.

    ``end_s`` is ``None`` while the span is open.  Attributes are
    free-form and JSON-serializable by convention (they land in the
    Chrome trace's ``args``).
    """

    __slots__ = (
        "span_id",
        "parent_id",
        "run_id",
        "name",
        "category",
        "node",
        "start_s",
        "end_s",
        "attrs",
    )

    def __init__(
        self,
        span_id: int,
        name: str,
        category: str,
        node: str,
        start_s: float,
        run_id: int,
        parent_id: Optional[int] = None,
        attrs: Optional[Dict[str, Any]] = None,
    ) -> None:
        self.span_id = span_id
        self.parent_id = parent_id
        self.run_id = run_id
        self.name = name
        self.category = category
        self.node = node
        self.start_s = start_s
        self.end_s: Optional[float] = None
        self.attrs: Dict[str, Any] = attrs or {}

    @property
    def finished(self) -> bool:
        return self.end_s is not None

    @property
    def duration_s(self) -> float:
        """Virtual seconds covered; 0.0 while the span is still open."""
        if self.end_s is None:
            return 0.0
        return self.end_s - self.start_s

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        end = f"{self.end_s:.6f}" if self.end_s is not None else "..."
        return (
            f"<Span #{self.span_id} {self.category}:{self.name} "
            f"[{self.start_s:.6f}, {end}] node={self.node or '-'}>"
        )


class TraceRun:
    """One cluster execution recorded by a tracer."""

    __slots__ = ("run_id", "label")

    def __init__(self, run_id: int, label: str) -> None:
        self.run_id = run_id
        self.label = label

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<TraceRun {self.run_id}: {self.label!r}>"


class Tracer:
    """Collects spans and metrics against a simulation's virtual clock.

    The tracer reads time from the environment most recently attached
    via :meth:`attach` (clusters attach themselves at construction).
    Recording is pure bookkeeping: no events are scheduled and no
    virtual time is charged, so tracing never changes simulated
    timings.
    """

    enabled = True

    def __init__(self, capture_timeouts: bool = False) -> None:
        self.spans: List[Span] = []
        self.metrics = MetricsRegistry()
        #: Record a span per ``Timeout`` event (very noisy; off by default).
        self.capture_timeouts = capture_timeouts
        self.runs: List[TraceRun] = []
        self._env: Optional[Any] = None
        self._next_span_id = 0

    # -- clock / runs ------------------------------------------------------

    @property
    def now(self) -> float:
        """Current virtual time of the attached environment (0.0 if none)."""
        return self._env.now if self._env is not None else 0.0

    def attach(self, env: Any, label: Optional[str] = None) -> TraceRun:
        """Begin a new run clocked by ``env``; returns its record.

        Clusters call this at construction, so sequential runs against
        one tracer land in distinct run buckets even though each run's
        virtual clock restarts at zero.
        """
        self._env = env
        run = TraceRun(len(self.runs), label or f"run-{len(self.runs)}")
        self.runs.append(run)
        return run

    def label_run(self, label: str) -> None:
        """Name the current run (e.g. ``"gotta/script"``); idempotent."""
        if not self.runs:
            self.runs.append(TraceRun(0, label))
        else:
            self.runs[-1].label = label

    def _current_run_id(self) -> int:
        if not self.runs:
            self.runs.append(TraceRun(0, "run-0"))
        return self.runs[-1].run_id

    # -- spans -------------------------------------------------------------

    def start(
        self,
        name: str,
        category: str = "",
        node: str = "",
        parent: Optional[Span] = None,
        **attrs: Any,
    ) -> Span:
        """Open a span at the current virtual time."""
        span = Span(
            span_id=self._next_span_id,
            name=name,
            category=category,
            node=node,
            start_s=self.now,
            run_id=self._current_run_id(),
            parent_id=parent.span_id if parent is not None else None,
            attrs=attrs or None,
        )
        self._next_span_id += 1
        self.spans.append(span)
        return span

    def end(self, span: Span, **attrs: Any) -> Span:
        """Close ``span`` at the current virtual time."""
        if span.end_s is not None:
            raise ValueError(f"span already ended: {span!r}")
        span.end_s = self.now
        if attrs:
            span.attrs.update(attrs)
        return span

    def record_complete(
        self,
        name: str,
        category: str = "",
        node: str = "",
        start_s: float = 0.0,
        end_s: float = 0.0,
        parent: Optional[Span] = None,
        **attrs: Any,
    ) -> Span:
        """Record an already-bounded interval (e.g. a scheduled timeout)."""
        span = Span(
            span_id=self._next_span_id,
            name=name,
            category=category,
            node=node,
            start_s=start_s,
            run_id=self._current_run_id(),
            parent_id=parent.span_id if parent is not None else None,
            attrs=attrs or None,
        )
        span.end_s = end_s
        self._next_span_id += 1
        self.spans.append(span)
        return span

    @contextmanager
    def span(
        self,
        name: str,
        category: str = "",
        node: str = "",
        parent: Optional[Span] = None,
        **attrs: Any,
    ) -> Iterator[Span]:
        """``with tracer.span(...) as sp:`` — opens and closes around the block."""
        sp = self.start(name, category=category, node=node, parent=parent, **attrs)
        try:
            yield sp
        finally:
            self.end(sp)

    # -- queries -----------------------------------------------------------

    def finished_spans(
        self,
        category: Optional[str] = None,
        run_id: Optional[int] = None,
    ) -> List[Span]:
        """Closed spans, optionally filtered by category and/or run."""
        return [
            span
            for span in self.spans
            if span.finished
            and (category is None or span.category == category)
            and (run_id is None or span.run_id == run_id)
        ]

    def children_of(self, span: Span) -> List[Span]:
        return [s for s in self.spans if s.parent_id == span.span_id]

    def clear(self) -> None:
        """Drop all recorded spans, metrics and runs."""
        self.spans.clear()
        self.metrics.clear()
        self.runs.clear()
        self._next_span_id = 0


class NullTracer:
    """The do-nothing tracer installed by default everywhere.

    ``enabled`` is False; instrumentation sites check the flag and skip
    all bookkeeping, so the null tracer's methods exist only as a
    safety net for unguarded calls.
    """

    enabled = False
    capture_timeouts = False
    metrics = NULL_METRICS
    spans: List[Span] = []
    runs: List[TraceRun] = []

    _NULL_SPAN = Span(-1, "null", "null", "", 0.0, run_id=-1)

    @property
    def now(self) -> float:
        return 0.0

    def attach(self, env: Any, label: Optional[str] = None) -> TraceRun:
        return TraceRun(-1, "null")

    def label_run(self, label: str) -> None:
        pass

    def start(self, name: str, **kwargs: Any) -> Span:
        return self._NULL_SPAN

    def end(self, span: Span, **attrs: Any) -> Span:
        return span

    def record_complete(self, name: str, **kwargs: Any) -> Span:
        return self._NULL_SPAN

    @contextmanager
    def span(self, name: str, **kwargs: Any) -> Iterator[Span]:
        yield self._NULL_SPAN

    def finished_spans(self, category: Optional[str] = None,
                       run_id: Optional[int] = None) -> List[Span]:
        return []

    def children_of(self, span: Span) -> List[Span]:
        return []

    def clear(self) -> None:
        pass


#: Shared singleton; ``Environment.tracer`` defaults to this.
NULL_TRACER = NullTracer()

#: The globally installed tracer, if any (see :func:`install_tracer`).
_installed: Optional[Tracer] = None


def install_tracer(tracer: Tracer) -> Tracer:
    """Make ``tracer`` the default for clusters built afterwards."""
    global _installed
    _installed = tracer
    return tracer


def uninstall_tracer() -> None:
    """Clear the globally installed tracer (back to :data:`NULL_TRACER`)."""
    global _installed
    _installed = None


def current_tracer():
    """The globally installed tracer, or :data:`NULL_TRACER`."""
    return _installed if _installed is not None else NULL_TRACER


@contextmanager
def tracing(tracer: Optional[Tracer] = None) -> Iterator[Tracer]:
    """Install a tracer for the duration of a ``with`` block.

    >>> with tracing() as tracer:
    ...     run = run_gotta_script(fresh_cluster(), paragraphs)
    >>> print(format_breakdown(tracer))
    """
    global _installed
    active = tracer if tracer is not None else Tracer()
    previous = _installed
    install_tracer(active)
    try:
        yield active
    finally:
        _installed = previous
