"""Command-line interface: ``python -m repro [experiment ...]``.

Runs the requested experiment reproductions (default: all) and prints
each measured-vs-paper table.  ``--quick`` uses reduced dataset scales.

Observability::

    python -m repro trace fig13d --quick --trace /tmp/gotta.json

The ``trace`` subcommand runs the named experiments with the
virtual-clock tracer installed, prints a per-run time breakdown after
each report, and ``--trace PATH`` writes the collected spans as a
Chrome ``trace_event`` JSON file (load it in ``chrome://tracing`` or
Perfetto).  ``--trace`` also works without the subcommand.

Fault injection (``repro.faults``)::

    python -m repro faults seed=7,tasks=2,nodes=1       # inspect a schedule
    python -m repro fig14a --quick --faults seed=7,tasks=2,nodes=1

The ``faults`` subcommand prints the deterministic schedule a spec
expands to; ``--faults SPEC`` runs the named experiments with that
schedule installed, so every cluster they build injects the same
faults (and recovers from them — outputs stay correct).

Scheduling (``repro.sched``)::

    python -m repro sched                                # list policies
    python -m repro fig13d --quick --scheduler locality
    python -m repro scheduling --quick                   # policy comparison

The ``sched`` subcommand prints the placement-policy catalogue;
``--scheduler NAME`` runs the named experiments with that policy
installed in both engines.  It composes with ``--trace`` (placement
decisions appear as ``sched.place`` spans) and ``--faults`` (policies
steer work around injected outages).

Memory pressure (``repro.mem``)::

    python -m repro mem                                  # spec grammar + defaults
    python -m repro mem on,ram=2gib,spill=0.7            # inspect a policy
    python -m repro fig13d --quick --mem on,ram=2gib
    python -m repro memory --quick                       # spill-vs-die experiment

The ``mem`` subcommand prints the policy a spec expands to; ``--mem
SPEC`` runs the named experiments with that policy installed in every
cluster they build (``on`` enables LRU spill-to-disk and admission
backpressure; ``ram=SIZE`` clamps every node's RAM).  Composes with
``--trace`` (spill/restore appear as ``mem`` spans), ``--faults``
(``ooms=N`` schedules RAM clamps) and ``--scheduler``.

Result caching (``repro.cache``)::

    python -m repro cache                                # spec grammar + defaults
    python -m repro cache on,cap=1gib                    # inspect a policy
    python -m repro fig13d --quick --cache on
    python -m repro caching --quick                      # cold-vs-warm experiment

The ``cache`` subcommand prints the policy a spec expands to; ``--cache
SPEC`` runs the named experiments with lineage-keyed result caching
installed in every cluster they build — one cache shared across the
run, so a repeated pipeline hits.  Composes with ``--trace`` (hits
appear as ``cache`` spans), ``--faults`` (reconstruction replays hit
the cache) and ``--scheduler`` (the locality policy gains cache
affinity).

Workflow specs (``repro.workflow.spec``)::

    python -m repro compile examples/workflows/dice.json
    python -m repro --workflow examples/workflows/demo.json

The ``compile`` subcommand parses and validates one
``repro/workflow-spec@1`` JSON document — editing-time checks: grammar,
unknown operator types, dangling links, cycles — and reports both
compilation targets (pipelined workflow plan and Ray-like script plan).
``--workflow FILE`` *runs* a self-contained spec (one without
``$param`` bindings) through both paradigms and diffs the collected
rows.  Bad specs exit 2 with the grammar on stderr, like every other
spec surface.

Workload generation (``repro.gen``)::

    python -m repro gen                                  # family catalogue + grammar
    python -m repro gen count=5,depth=6                  # 5 random DAGs, run + diff
    python -m repro gen family=raster,scale=2            # one generated family
    python -m repro gen seed=3,emit=/tmp/spec.json       # write the document

The ``gen`` subcommand expands a seeded workload spec: each document
is validated, compiled to both paradigms and (by default) executed
under both with the collected rows diffed — the same contract the
property suites enforce.  ``family=`` selects one of the three curated
task families (``stream``, ``smallsteps``, ``raster``); without it the
random DAG generator runs with the ``depth``/``fanout``/... knobs.
``emit=PATH`` writes strict JSON that ``repro compile`` and
``--workflow`` read back.  Corpus traffic: ``--jobs on,body=gen``
draws each arrival's body from the family catalogue.

Multi-tenant job service (``repro.jobs``)::

    python -m repro jobs                                 # spec grammar + defaults
    python -m repro jobs on,rate=50,tenants=8            # run a traffic simulation
    python -m repro fig13d --quick --jobs on             # experiments as jobs
    python -m repro fairshare --quick                    # fifo-vs-drf experiment

The ``jobs`` subcommand prints the configuration a spec expands to
and, when the spec says ``on``, drives the seeded open-loop traffic
generator through the :class:`repro.jobs.JobService` and prints the
outcome (jobs/sec, queue-latency percentiles, per-tenant shares).
``--jobs SPEC`` runs the named experiments as jobs submitted through a
service instead of direct calls; it composes with every other flag.

Elasticity (``repro.elastic``)::

    python -m repro elastic                              # spec grammar + defaults
    python -m repro elastic on,min=1,max=16              # inspect a policy
    python -m repro jobs on,rate=50 --elastic on,min=1   # autoscaled traffic
    python -m repro elasticity --quick                   # cost-vs-latency experiment

The ``elastic`` subcommand prints the autoscaler policy a spec expands
to; ``--elastic SPEC`` installs it for the run, so every job service
built attaches an :class:`repro.elastic.Autoscaler` that provisions
and drains workers from the ``repro.obs`` gauge signals.  Composes
with ``jobs`` (the traffic run above scales 1..N with load) and
``--trace`` (membership appears as the ``cluster.nodes`` gauge).

Subcommand dispatch is table-driven: each inspection subcommand is one
:class:`Subcommand` row in ``SUBCOMMANDS`` sharing a single usage and
exit-2 spec-error formatter, so new subsystems slot in without another
hand-rolled branch.
"""

from __future__ import annotations

import argparse
import sys
from contextlib import nullcontext
from dataclasses import dataclass
from typing import Callable, List, Optional, Tuple

from repro.experiments import ALL_EXPERIMENTS
from repro.experiments.exp_language import run_table1
from repro.experiments.exp_modularity import run_fig12a, run_fig12b
from repro.experiments.exp_scaling import (
    run_fig13a,
    run_fig13b,
    run_fig13c,
    run_fig13d,
)
from repro.experiments.exp_caching import run_caching
from repro.experiments.exp_elastic import run_elasticity
from repro.experiments.exp_fairshare import run_fairshare
from repro.experiments.exp_memory import run_memory
from repro.experiments.exp_recovery import run_recovery
from repro.experiments.exp_scenarios import run_scenarios
from repro.experiments.exp_scheduling import run_scheduling
from repro.experiments.exp_workers import run_fig14a, run_fig14b, run_fig14c
from repro.cache import ResultCache, cached, describe_cache, parse_cache_spec
from repro.config import JobsConfig
from repro.elastic import describe_elastic, elastic_enabled, parse_elastic_spec
from repro.errors import (
    CacheSpecError,
    ElasticSpecError,
    FaultSpecError,
    GenSpecError,
    InvalidWorkflow,
    JobsSpecError,
    MemSpecError,
    WorkflowSpecError,
)
from repro.faults import FaultSchedule, faults_injected
from repro.jobs import describe_jobs, parse_jobs_spec
from repro.mem import describe_memory, memory_managed, parse_mem_spec
from repro.obs import Tracer, format_breakdown, tracing, write_chrome_trace
from repro.sched import policy_catalogue, scheduling, valid_policy

__all__ = ["main", "QUICK_EXPERIMENTS"]

#: Reduced-scale variants (seconds instead of minutes).
QUICK_EXPERIMENTS = {
    "fig12a": run_fig12a,
    "fig12b": lambda: run_fig12b(num_candidates=1500, universe_size=4000),
    "table1": lambda: run_table1(sizes=(1500, 4000), universe_size=4000),
    "fig13a": lambda: run_fig13a(sizes=(10, 40)),
    "fig13b": lambda: run_fig13b(sizes=(50, 100)),
    "fig13c": lambda: run_fig13c(sizes=(1500, 4000), universe_size=4000),
    "fig13d": lambda: run_fig13d(sizes=(1, 4)),
    "fig14a": lambda: run_fig14a(num_docs=40),
    "fig14b": run_fig14b,
    "fig14c": lambda: run_fig14c(num_candidates=4000, universe_size=4000),
    "recovery": lambda: run_recovery(num_docs=40, num_paragraphs=1),
    "scheduling": lambda: run_scheduling(
        num_candidates=1500, universe_size=4000, num_paragraphs=1
    ),
    "memory": lambda: run_memory(
        num_docs=40, num_paragraphs=1, num_candidates=1500,
        universe_size=4000, num_tweets=40,
    ),
    "caching": lambda: run_caching(
        num_docs=40, num_paragraphs=1, num_candidates=1500,
        universe_size=4000, num_tweets=40,
    ),
    "fairshare": lambda: run_fairshare(
        horizon_s=12.0, heavy_rate=14.0, light_rate=2.0
    ),
    "elasticity": lambda: run_elasticity(
        flood_s=6.0, tail_s=25.0, heavy_rate=12.0, light_rate=2.0
    ),
    "scenarios": lambda: run_scenarios(scale=0.5, seeds=(0,)),
}

#: Shown by the bare ``mem`` subcommand alongside the default policy.
MEM_SPEC_HELP = """\
spec grammar: comma-separated flags and key=value pairs
  on | off         enable / disable spilling + backpressure (default: off)
  ram=SIZE         clamp every node's RAM (e.g. 2gib, 512mib, 1.5gb)
  spill=FRACTION   start spilling above this fraction of RAM (default 0.8)
  admit=FRACTION   block admissions above this fraction (default 0.95)
  write_bw=SIZE    spill write bandwidth per second (default 100mib)
  read_bw=SIZE     restore read bandwidth per second (default 100mib)
  base=SECONDS     fixed per-spill/restore latency (default 0.002)
example: --mem on,ram=2gib,spill=0.7,admit=0.9"""

#: Shown by the bare ``cache`` subcommand alongside the default policy.
CACHE_SPEC_HELP = """\
spec grammar: comma-separated flags and key=value pairs
  on | off         enable / disable result caching (default: off)
  cap=SIZE         per-node capacity, LRU-evicted (e.g. 1gib, 256mib)
  lookup=SECONDS   virtual cost charged per cache hit (default 0.0001)
  epoch=N          generation counter; bump to invalidate everything
example: --cache on,cap=1gib,lookup=0.0001"""

#: Appended to fault-spec parse errors (the full grammar lives in
#: ``FaultSchedule.from_spec``'s docstring and ``docs/faults.md``).
FAULT_SPEC_HINT = """\
spec grammar: seed=N[,tasks=N,operators=N,nodes=N,links=N,replicas=N,\
ooms=N,horizon=S,outage=S,...] or a path to a schedule JSON
example: --faults seed=7,tasks=2,nodes=1 (inspect with 'repro faults SPEC')"""

#: Appended to workflow-spec errors from ``compile`` and ``--workflow``.
WORKFLOW_SPEC_HELP = """\
spec grammar: a repro/workflow-spec@1 JSON document
  {"spec": "repro/workflow-spec@1", "name": NAME,
   "operators": [{"id": ID, "type": TYPE, "config": {...}}, ...],
   "links": [{"from": ID, "to": ID, "out": PORT, "in": PORT}, ...]}
config values may use resolution forms:
  {"$param": NAME}                  runtime binding (tables, datasets, costs)
  {"$callable": "module:qualname"}  imported Python UDF
  {"$schema": {FIELD: TYPE, ...}}   schema literal (int/float/string/bool/any)
  {"$predicate": {...}}             declarative predicate tree
examples: examples/workflows/*.json (the four paper tasks, $param-bound);
examples/workflows/demo.json (self-contained, runnable via --workflow)"""


#: Shown by the bare ``jobs`` subcommand alongside the default config.
JOBS_SPEC_HELP = """\
spec grammar: comma-separated flags and key=value pairs
  on | off          run / don't run the traffic generator (default: off)
  seed=N            traffic-generator seed (default 0)
  rate=JOBS_PER_S   mean Poisson arrival rate (default 10)
  horizon=SECONDS   arrival-generation horizon (default 60)
  tenants=N         tenant population (default 4)
  burst=F           burst amplitude: in-window rate x(1+F) (default 0)
  burst_period=S    burst window period (default 300)
  burst_duty=F      burst duty cycle, fraction of period (default 0.1)
  diurnal=F         diurnal sine amplitude in [0,1] (default 0)
  period=S          diurnal period (default 86400)
  policy=NAME       admission ordering: fifo or drf (default drf)
  placement=NAME    node placement policy, see 'repro sched' (default drf)
  quota_running=N   per-tenant cap on concurrently running jobs
  quota_cpus=N      per-tenant cap on concurrently held vCPUs
  quota_ram=SIZE    per-tenant cap on concurrently held RAM
  max_queue=N       queue capacity; beyond it submissions are rejected
  cpus=N            per-job vCPU demand (default 1)
  ram=SIZE          per-job RAM demand (default 1gib)
  duration=SECONDS  mean profile-body duration (default 1.0)
  body=NAME         job body, see repro.jobs.bodies (default profile)
  admit=FRACTION    RAM backpressure watermark (default: memory policy's)
example: --jobs on,rate=50,tenants=8,policy=drf,quota_running=4"""


#: Shown by the bare ``gen`` subcommand alongside the family catalogue.
GEN_SPEC_HELP = """\
spec grammar: comma-separated key=value pairs
  seed=N            first seed (default 0)
  count=N           consecutive seeds to generate (default 1)
  family=NAME       stream, smallsteps or raster (default: random DAG)
  scale=F           family scale factor (default 1.0)
  depth=N           random DAG: stages per chain (default 4)
  sources=N         random DAG: max source operators (default 3)
  fanout=F          random DAG: merge probability in [0,1] (default 0.35)
  selectivity=F     random DAG: filter keep-fraction in [0,1] (default 0.5)
  rows=N            random DAG: rows per source (default 12)
  run=on|off        execute under both paradigms and diff rows (default on)
  emit=PATH         write the spec JSON to PATH (count>1 appends -SEED)
examples: repro gen family=raster,scale=2 / repro gen count=5,depth=6,run=off"""


#: Shown by the bare ``elastic`` subcommand alongside the default config.
ELASTIC_SPEC_HELP = """\
spec grammar: comma-separated flags and key=value pairs
  on | off          attach / don't attach the autoscaler (default: off)
  min=N             fleet floor, workers (default 1)
  max=N             fleet ceiling, workers (default 8)
  interval=SECONDS  gauge-evaluation cadence (default 1)
  provision=SECONDS virtual boot latency per new node (default 10)
  up=F              scale up above F queued jobs per worker (default 4)
  load=FRACTION     ... or at this reserved-vCPU load (default 0.9)
  ram=FRACTION      ... or at this RAM high-water fraction (default 0.9)
  idle=SECONDS      a node must idle this long to drain (default 3)
  cooldown=SECONDS  no scale-down within this of a scale-up (default 5)
  step=N            nodes provisioned per scale-up decision (default 1)
  shape=NAME        new-node machine shape: default, fast, slow, highmem
  drain=on|off      drain (migrate replicas) vs crash-evict (default on)
example: --elastic on,min=1,max=16,provision=5,shape=fast"""


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduce the tables and figures of 'Data Science Tasks "
            "Implemented with Scripts versus GUI-Based Workflows' (ICDE 2024)."
        ),
    )
    parser.add_argument(
        "experiments",
        nargs="*",
        metavar="experiment",
        help=f"which to run; choices: {', '.join(sorted(ALL_EXPERIMENTS))} "
        "(default: all).  Prefix with 'trace' to also print per-run "
        "virtual-time breakdowns, e.g. 'repro trace fig13d --quick'.",
    )
    parser.add_argument(
        "--quick", action="store_true", help="reduced dataset scales"
    )
    parser.add_argument(
        "--list", action="store_true", help="list experiments and exit"
    )
    parser.add_argument(
        "--trace",
        metavar="PATH",
        default=None,
        help="write a Chrome trace_event JSON of the run to PATH "
        "(implies tracing; open in chrome://tracing or Perfetto)",
    )
    parser.add_argument(
        "--faults",
        metavar="SPEC",
        default=None,
        help="run with a deterministic fault schedule installed; SPEC is "
        "'seed=7,tasks=2,nodes=1,...' or a path to a schedule JSON "
        "(inspect with the 'faults' subcommand: 'repro faults SPEC')",
    )
    parser.add_argument(
        "--scheduler",
        metavar="NAME",
        default=None,
        help="placement policy installed in both engines for the run "
        "(list with the 'sched' subcommand: 'repro sched')",
    )
    parser.add_argument(
        "--mem",
        metavar="SPEC",
        default=None,
        help="run with a memory-pressure policy installed; SPEC is "
        "'on,ram=2gib,spill=0.7,...' (inspect with the 'mem' "
        "subcommand: 'repro mem SPEC')",
    )
    parser.add_argument(
        "--cache",
        metavar="SPEC",
        default=None,
        help="run with lineage-keyed result caching installed; SPEC is "
        "'on,cap=1gib,lookup=0.0001,...' (inspect with the 'cache' "
        "subcommand: 'repro cache SPEC')",
    )
    parser.add_argument(
        "--workflow",
        metavar="FILE",
        default=None,
        help="run a self-contained workflow-spec JSON through both "
        "paradigms (pipelined engine and Ray-like script plan) and "
        "diff the collected rows (validate with the 'compile' "
        "subcommand: 'repro compile FILE')",
    )
    parser.add_argument(
        "--jobs",
        metavar="SPEC",
        default=None,
        help="run the named experiments as jobs submitted through the "
        "multi-tenant job service; SPEC is 'on,rate=50,policy=drf,...' "
        "(inspect with the 'jobs' subcommand: 'repro jobs SPEC')",
    )
    parser.add_argument(
        "--elastic",
        metavar="SPEC",
        default=None,
        help="install an elastic-membership/autoscaler policy for the "
        "run; SPEC is 'on,min=1,max=16,provision=5,...' (inspect with "
        "the 'elastic' subcommand: 'repro elastic SPEC')",
    )
    return parser


def _fault_summary(injector) -> str:
    return (
        f"faults: {injector.injected} injected, {injector.retries} recovery "
        f"actions, {injector.skipped} skipped (seed="
        f"{injector.schedule.seed})"
    )


def _cache_summary(cache: ResultCache) -> str:
    return (
        f"cache: {cache.hits} hits, {cache.misses} misses "
        f"({cache.hit_rate:.0%} hit rate), {len(cache)} entries "
        f"({cache.total_bytes} bytes), {cache.evictions} evicted"
    )


def _unknown_experiments_message(unknown: List[str], registry) -> str:
    noun = "experiment" if len(unknown) == 1 else "experiments"
    lines = [f"repro: unknown {noun}: {', '.join(unknown)}", "valid experiment ids:"]
    lines.extend(f"  {name}" for name in sorted(registry))
    lines.append("(use --list to print them, 'trace <id>' for a time breakdown)")
    return "\n".join(lines)


# -- subcommand registry -------------------------------------------------------

def _spec_error(context: str, exc: Exception, help_text: str) -> str:
    """The one exit-2 formatter: who failed, why, and the grammar."""
    return f"repro: {context}: {exc}\n{help_text}"


def _handle_sched(spec: Optional[str]) -> int:
    print(policy_catalogue())
    return 0


def _handle_mem(spec: Optional[str]) -> int:
    if spec is None:
        from repro.config import MemoryConfig

        print(describe_memory(MemoryConfig()))
        print()
        print(MEM_SPEC_HELP)
        return 0
    print(describe_memory(parse_mem_spec(spec)))
    return 0


def _handle_cache(spec: Optional[str]) -> int:
    if spec is None:
        from repro.config import CacheConfig

        print(describe_cache(CacheConfig()))
        print()
        print(CACHE_SPEC_HELP)
        return 0
    print(describe_cache(parse_cache_spec(spec)))
    return 0


def _handle_faults(spec: Optional[str]) -> int:
    print(FaultSchedule.from_spec(spec).describe())
    return 0


def _handle_jobs(spec: Optional[str]) -> int:
    if spec is None:
        print(describe_jobs(JobsConfig()))
        print()
        print(JOBS_SPEC_HELP)
        return 0
    config = parse_jobs_spec(spec)
    print(describe_jobs(config))
    if config.enabled:
        from repro.jobs import JobService

        service = JobService(config)
        summary = service.simulate()
        print()
        print(_jobs_summary(summary))
        if not service.queue.drained:
            print("repro: jobs: queue did not drain", file=sys.stderr)
            return 1
    return 0


def _handle_elastic(spec: Optional[str]) -> int:
    if spec is None:
        from repro.config import ElasticConfig

        print(describe_elastic(ElasticConfig()))
        print()
        print(ELASTIC_SPEC_HELP)
        return 0
    print(describe_elastic(parse_elastic_spec(spec)))
    return 0


def _register_task_operator_types() -> None:
    """Import task workflow modules that register custom spec types.

    ``repro.tasks`` deliberately avoids importing its subpackages, so
    the CLI pulls in the two modules whose operators
    (``kge_stage``, ``wef_ensemble_train``) task specs reference, plus
    the generated-family operators (``micro_batch_source``,
    ``raster_source``) so emitted ``repro gen`` documents compile.
    """
    import repro.gen.operators  # noqa: F401
    import repro.tasks.kge.workflow  # noqa: F401
    import repro.tasks.wef.workflow  # noqa: F401


def _gen_emit_path(base: str, seed: int, multiple: bool) -> str:
    if not multiple:
        return base
    from pathlib import Path

    p = Path(base)
    return str(p.with_name(f"{p.stem}-{seed}{p.suffix or '.json'}"))


def _handle_gen(spec: Optional[str]) -> int:
    """Generate seeded workloads; validate, compile, run, diff, emit."""
    _register_task_operator_types()
    from dataclasses import replace

    from repro.gen import (
        describe_gen,
        family_catalogue,
        family_spec,
        generate_spec,
        parse_gen_spec,
    )
    from repro.rayx.compile import compile_script_plan
    from repro.workflow.spec import WorkflowSpec, build_workflow, dump_spec_doc

    if spec is None:
        print(family_catalogue())
        print()
        print(GEN_SPEC_HELP)
        return 0
    request = parse_gen_spec(spec)
    print(describe_gen(request))
    mismatches = 0
    for seed in range(request.seed, request.seed + request.count):
        if request.family is not None:
            doc = family_spec(request.family, seed=seed, scale=request.scale)
        else:
            doc = generate_spec(replace(request.config, seed=seed))
        parsed = WorkflowSpec.from_json(doc)
        if request.emit:
            from pathlib import Path

            path = _gen_emit_path(request.emit, seed, request.count > 1)
            try:
                Path(path).write_text(
                    dump_spec_doc(parsed.to_json()) + "\n", encoding="utf-8"
                )
            except OSError as exc:
                raise GenSpecError(f"emit: cannot write {path}: {exc}") from exc
            print(f"  seed {seed}: wrote {path}")
        plan = compile_script_plan(build_workflow(parsed))
        head = (
            f"  seed {seed}: {parsed.name!r} "
            f"{len(parsed.operators)} operators"
        )
        if not request.run:
            print(
                f"{head} -- validated, both paradigms compile "
                f"({plan.num_tasks} script tasks)"
            )
            continue
        from repro.cluster import build_cluster
        from repro.sim import Environment
        from repro.workflow import run_workflow

        cluster = build_cluster(Environment())
        result = run_workflow(cluster, build_workflow(parsed))
        script_cluster = build_cluster(Environment())
        script_tables = plan.run(cluster=script_cluster)

        def multiset(table):
            return sorted(tuple(map(str, row.values)) for row in table)

        rows = 0
        identical = True
        for sink_id, table in sorted(script_tables.items()):
            engine_rows = multiset(result.results[sink_id])
            identical = identical and engine_rows == multiset(table)
            rows += len(engine_rows)
        verdict = "identical" if identical else "MISMATCH"
        mismatches += 0 if identical else 1
        print(
            f"{head} -- workflow {result.elapsed_s:.3f}s, "
            f"script {script_cluster.env.now:.3f}s, "
            f"{rows} rows {verdict}"
        )
    if mismatches:
        print(
            f"repro: gen: paradigms disagree on {mismatches} of "
            f"{request.count} seeds",
            file=sys.stderr,
        )
        return 1
    return 0


def _handle_compile(source: Optional[str]) -> int:
    """Validate one spec file; report both compilation targets."""
    _register_task_operator_types()
    from collections import Counter

    from repro.rayx.compile import compile_script_plan
    from repro.workflow.spec import build_workflow, operator_factory, read_spec

    spec = read_spec(source)
    for op in spec.operators:
        operator_factory(op.type)  # unknown types name the catalogue
    counts = Counter(op.type for op in spec.operators)
    types = ", ".join(
        f"{name} x{count}" if count > 1 else name
        for name, count in sorted(counts.items())
    )
    print(f"workflow {spec.name!r} ({spec.version})")
    print(f"  operators: {len(spec.operators)} ({types})")
    print(f"  links: {len(spec.links)}")
    params = spec.params()
    if params:
        print(f"  params: {', '.join(params)}")
        print(
            "  validation: structural OK (instantiation deferred: "
            "$param bindings are supplied at run time)"
        )
        return 0
    plan = compile_script_plan(build_workflow(spec))
    print(
        f"  workflow plan: {plan.workflow.num_operators} operators, "
        f"{len(plan.workflow.links)} links"
    )
    print(f"  script plan: {plan.num_tasks} tasks")
    print("  validation: OK (both paradigms compile)")
    return 0


def _run_workflow_file(path: str) -> int:
    """Run a self-contained spec through both paradigms; diff rows."""
    _register_task_operator_types()
    from repro.cluster import build_cluster
    from repro.rayx.compile import compile_script_plan
    from repro.sim import Environment
    from repro.workflow import run_workflow
    from repro.workflow.spec import build_workflow, read_spec

    spec = read_spec(path)
    params = spec.params()
    if params:
        raise WorkflowSpecError(
            f"spec references runtime bindings {params}; only "
            f"self-contained specs run from the command line "
            f"(inspect with 'repro compile {path}')"
        )
    workflow = build_workflow(spec)
    cluster = build_cluster(Environment())
    result = run_workflow(cluster, workflow)
    plan = compile_script_plan(build_workflow(spec))
    script_cluster = build_cluster(Environment())
    script_tables = plan.run(cluster=script_cluster)

    def multiset(table):
        return sorted(tuple(map(str, row.values)) for row in table)

    print(
        f"workflow {spec.name!r}: {workflow.num_operators} operators, "
        f"{len(workflow.links)} links"
    )
    print(
        f"  workflow paradigm: {result.elapsed_s:.3f}s virtual "
        f"({result.num_worker_instances} worker instances)"
    )
    print(
        f"  script paradigm:   {script_cluster.env.now:.3f}s virtual "
        f"({plan.num_tasks} tasks)"
    )
    identical = True
    for sink_id, table in sorted(script_tables.items()):
        engine_rows = multiset(result.results[sink_id])
        script_rows = multiset(table)
        match = engine_rows == script_rows
        identical = identical and match
        verdict = "identical" if match else "MISMATCH"
        print(
            f"  sink {sink_id!r}: {len(engine_rows)} rows (workflow) vs "
            f"{len(script_rows)} rows (script) -- {verdict}"
        )
    if not identical:
        print(
            f"repro: --workflow: paradigms disagree on {path}",
            file=sys.stderr,
        )
        return 1
    return 0


@dataclass(frozen=True)
class Subcommand:
    """One row of the dispatch table: an inspection subcommand."""

    name: str
    #: Usage line printed on arity errors (``repro: {name}: usage: {usage}``).
    usage: str
    #: ``"none"`` (no spec), ``"optional"`` or ``"required"``.
    arity: str
    #: ``args`` attribute consulted when no positional spec is given
    #: (so ``repro faults --faults SPEC`` and friends keep working).
    option: Optional[str]
    handler: Callable[[Optional[str]], int]
    #: Spec-error classes the handler may raise.
    errors: Tuple[type, ...]
    #: Grammar appended to spec errors by the shared formatter.
    help_text: str


SUBCOMMANDS = {
    sub.name: sub
    for sub in (
        Subcommand(
            "sched", "repro sched", "none", None, _handle_sched, (), ""
        ),
        Subcommand(
            "mem", "repro mem [SPEC]", "optional", "mem",
            _handle_mem, (MemSpecError,), MEM_SPEC_HELP,
        ),
        Subcommand(
            "cache", "repro cache [SPEC]", "optional", "cache",
            _handle_cache, (CacheSpecError,), CACHE_SPEC_HELP,
        ),
        Subcommand(
            "faults", "repro faults SPEC", "required", "faults",
            _handle_faults, (FaultSpecError,), FAULT_SPEC_HINT,
        ),
        Subcommand(
            "jobs", "repro jobs [SPEC]", "optional", "jobs",
            _handle_jobs, (JobsSpecError,), JOBS_SPEC_HELP,
        ),
        Subcommand(
            "elastic", "repro elastic [SPEC]", "optional", "elastic",
            _handle_elastic, (ElasticSpecError,), ELASTIC_SPEC_HELP,
        ),
        Subcommand(
            "compile", "repro compile FILE", "required", None,
            _handle_compile, (WorkflowSpecError, InvalidWorkflow),
            WORKFLOW_SPEC_HELP,
        ),
        Subcommand(
            "gen", "repro gen [SPEC]", "optional", None,
            _handle_gen, (GenSpecError, WorkflowSpecError, InvalidWorkflow),
            GEN_SPEC_HELP,
        ),
    )
}


def _dispatch_subcommand(names: List[str], args) -> Optional[int]:
    """Run ``names`` as a subcommand, or None when it is not one."""
    if not names or names[0] not in SUBCOMMANDS:
        return None
    sub = SUBCOMMANDS[names[0]]
    if len(names) > (1 if sub.arity == "none" else 2):
        print(f"repro: {sub.name}: usage: {sub.usage}", file=sys.stderr)
        return 2
    spec = names[1] if len(names) == 2 else (
        getattr(args, sub.option) if sub.option else None
    )
    if spec is None and sub.arity == "required":
        print(f"repro: {sub.name}: usage: {sub.usage}", file=sys.stderr)
        return 2
    try:
        return sub.handler(spec)
    except sub.errors as exc:
        print(_spec_error(sub.name, exc, sub.help_text), file=sys.stderr)
        return 2


#: ``--flag SPEC`` options sharing the exit-2 formatter: each row is
#: (args attribute, parser, error classes, grammar).
SPEC_OPTIONS = (
    ("faults", FaultSchedule.from_spec, (FaultSpecError,), FAULT_SPEC_HINT),
    ("mem", parse_mem_spec, (MemSpecError,), MEM_SPEC_HELP),
    (
        "cache",
        lambda spec: ResultCache(parse_cache_spec(spec)),
        (CacheSpecError,),
        CACHE_SPEC_HELP,
    ),
    ("jobs", parse_jobs_spec, (JobsSpecError,), JOBS_SPEC_HELP),
)


def _jobs_summary(summary) -> str:
    """Compact text rendering of :meth:`repro.jobs.JobService.summary`."""
    counts = summary["counts"]

    def seconds(value) -> str:
        return "n/a" if value is None else f"{value:.3f}s"

    lines = [
        f"traffic: {summary['jobs']} jobs submitted, "
        f"{summary['rejected']} rejected at capacity",
        f"  terminal         {counts['completed']} completed, "
        f"{counts['failed']} failed, {counts['cancelled']} cancelled",
        f"  throughput       {summary['virtual_jobs_per_s']:.2f} jobs/s "
        f"over {summary['virtual_makespan_s']:.2f}s (virtual)",
        f"  queue latency    p50 {seconds(summary['p50_queue_s'])}, "
        f"p99 {seconds(summary['p99_queue_s'])}",
        f"  peak queue depth {summary['peak_queue_depth']}",
    ]
    if "elastic" in summary:
        es = summary["elastic"]
        lines.append(
            f"  elastic          {es['scale_ups']} up / {es['scale_downs']} "
            f"down, peak {es['peak_nodes']} nodes, "
            f"{summary['node_seconds']:.1f} node-seconds"
        )
    for tenant, stats in summary["tenants"].items():
        lines.append(
            f"  {tenant:<16} {stats['completed']}/{stats['submitted']} "
            f"completed, p99 queue {seconds(stats['p99_queue_s'])}"
        )
    return "\n".join(lines)


def _run_experiments(names: List[str], registry, jobs_config) -> int:
    """Run experiments directly, or as jobs when ``--jobs`` enables them."""
    if jobs_config is None or not jobs_config.enabled:
        for name in names:
            print(registry[name]().to_text())
            print()
        return 0
    from repro.jobs import JobResult, JobService, JobSpec

    service = JobService(jobs_config)
    for name in names:
        fn = registry[name]
        job = service.run_job(
            JobSpec(
                tenant="cli",
                body="profile",
                cpus=jobs_config.cpus,
                ram_bytes=jobs_config.ram_bytes,
                duration_s=jobs_config.duration_s,
            ),
            body_fn=lambda spec, fn=fn: JobResult(duration_s=0.0, value=fn()),
        )
        if job.state != "completed":
            print(
                f"repro: --jobs: job {job.job_id} ({name}) "
                f"{job.state}: {job.error}",
                file=sys.stderr,
            )
            return 1
        print(job.result.value.to_text())
        print()
    counts = service.counts()
    print(
        f"jobs: {counts['completed']} of {len(service.queue)} completed "
        f"through the job service (policy={jobs_config.policy}, "
        f"placement={jobs_config.placement})"
    )
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    # --elastic is resolved before subcommand dispatch (unlike the
    # SPEC_OPTIONS below) so it composes with 'repro jobs SPEC': the
    # traffic run resolves the installed config when it builds its
    # JobService.
    elastic_config = None
    if args.elastic is not None:
        try:
            elastic_config = parse_elastic_spec(args.elastic)
        except ElasticSpecError as exc:
            print(
                _spec_error("--elastic", exc, ELASTIC_SPEC_HELP),
                file=sys.stderr,
            )
            return 2
    elastic_context = (
        elastic_enabled(elastic_config)
        if elastic_config is not None
        else nullcontext()
    )
    with elastic_context:
        return _main(args)


def _main(args) -> int:
    registry = QUICK_EXPERIMENTS if args.quick else ALL_EXPERIMENTS
    if args.list:
        for name in sorted(registry):
            print(name)
        return 0
    names = list(args.experiments)
    code = _dispatch_subcommand(names, args)
    if code is not None:
        return code
    if args.workflow is not None:
        try:
            return _run_workflow_file(args.workflow)
        except (WorkflowSpecError, InvalidWorkflow) as exc:
            print(
                _spec_error("--workflow", exc, WORKFLOW_SPEC_HELP),
                file=sys.stderr,
            )
            return 2
    if args.scheduler is not None and not valid_policy(args.scheduler):
        print(
            f"repro: --scheduler: unknown policy {args.scheduler!r}\n"
            + policy_catalogue(),
            file=sys.stderr,
        )
        return 2
    parsed = {}
    for attr, parse, errors, help_text in SPEC_OPTIONS:
        raw = getattr(args, attr)
        if raw is None:
            continue
        try:
            parsed[attr] = parse(raw)
        except errors as exc:
            print(_spec_error(f"--{attr}", exc, help_text), file=sys.stderr)
            return 2
    schedule = parsed.get("faults")
    mem_config = parsed.get("mem")
    cache = parsed.get("cache")
    jobs_config = parsed.get("jobs")
    trace_mode = bool(names) and names[0] == "trace"
    if trace_mode:
        names = names[1:]
    trace_mode = trace_mode or args.trace is not None
    names = names or sorted(registry)
    unknown = [name for name in names if name not in registry]
    if unknown:
        print(_unknown_experiments_message(unknown, registry), file=sys.stderr)
        return 2
    if args.trace is not None:
        # Fail fast on an unwritable target instead of crashing after
        # the experiments have already run.
        from pathlib import Path

        parent = Path(args.trace).resolve().parent
        if not parent.is_dir():
            print(
                f"repro: --trace: directory does not exist: {parent}",
                file=sys.stderr,
            )
            return 2
    fault_context = (
        faults_injected(schedule) if schedule is not None else nullcontext()
    )
    sched_context = (
        scheduling(args.scheduler) if args.scheduler is not None else nullcontext()
    )
    mem_context = (
        memory_managed(mem_config) if mem_config is not None else nullcontext()
    )
    cache_context = cached(cache) if cache is not None else nullcontext()
    if not trace_mode:
        with fault_context as injector, sched_context, mem_context, cache_context:
            code = _run_experiments(names, registry, jobs_config)
        if injector is not None:
            print(_fault_summary(injector))
        if cache is not None:
            print(_cache_summary(cache))
        return code
    tracer = Tracer()
    with fault_context as injector, tracing(tracer), sched_context, \
            mem_context, cache_context:
        code = _run_experiments(names, registry, jobs_config)
    print(format_breakdown(tracer))
    if injector is not None:
        print(_fault_summary(injector))
    if cache is not None:
        print(_cache_summary(cache))
    if args.trace is not None:
        write_chrome_trace(tracer, args.trace)
        print(f"\nwrote Chrome trace: {args.trace}")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
