"""Command-line interface: ``python -m repro [experiment ...]``.

Runs the requested experiment reproductions (default: all) and prints
each measured-vs-paper table.  ``--quick`` uses reduced dataset scales.

Observability::

    python -m repro trace fig13d --quick --trace /tmp/gotta.json

The ``trace`` subcommand runs the named experiments with the
virtual-clock tracer installed, prints a per-run time breakdown after
each report, and ``--trace PATH`` writes the collected spans as a
Chrome ``trace_event`` JSON file (load it in ``chrome://tracing`` or
Perfetto).  ``--trace`` also works without the subcommand.

Fault injection (``repro.faults``)::

    python -m repro faults seed=7,tasks=2,nodes=1       # inspect a schedule
    python -m repro fig14a --quick --faults seed=7,tasks=2,nodes=1

The ``faults`` subcommand prints the deterministic schedule a spec
expands to; ``--faults SPEC`` runs the named experiments with that
schedule installed, so every cluster they build injects the same
faults (and recovers from them — outputs stay correct).

Scheduling (``repro.sched``)::

    python -m repro sched                                # list policies
    python -m repro fig13d --quick --scheduler locality
    python -m repro scheduling --quick                   # policy comparison

The ``sched`` subcommand prints the placement-policy catalogue;
``--scheduler NAME`` runs the named experiments with that policy
installed in both engines.  It composes with ``--trace`` (placement
decisions appear as ``sched.place`` spans) and ``--faults`` (policies
steer work around injected outages).

Memory pressure (``repro.mem``)::

    python -m repro mem                                  # spec grammar + defaults
    python -m repro mem on,ram=2gib,spill=0.7            # inspect a policy
    python -m repro fig13d --quick --mem on,ram=2gib
    python -m repro memory --quick                       # spill-vs-die experiment

The ``mem`` subcommand prints the policy a spec expands to; ``--mem
SPEC`` runs the named experiments with that policy installed in every
cluster they build (``on`` enables LRU spill-to-disk and admission
backpressure; ``ram=SIZE`` clamps every node's RAM).  Composes with
``--trace`` (spill/restore appear as ``mem`` spans), ``--faults``
(``ooms=N`` schedules RAM clamps) and ``--scheduler``.

Result caching (``repro.cache``)::

    python -m repro cache                                # spec grammar + defaults
    python -m repro cache on,cap=1gib                    # inspect a policy
    python -m repro fig13d --quick --cache on
    python -m repro caching --quick                      # cold-vs-warm experiment

The ``cache`` subcommand prints the policy a spec expands to; ``--cache
SPEC`` runs the named experiments with lineage-keyed result caching
installed in every cluster they build — one cache shared across the
run, so a repeated pipeline hits.  Composes with ``--trace`` (hits
appear as ``cache`` spans), ``--faults`` (reconstruction replays hit
the cache) and ``--scheduler`` (the locality policy gains cache
affinity).
"""

from __future__ import annotations

import argparse
import sys
from contextlib import nullcontext
from typing import List, Optional

from repro.experiments import ALL_EXPERIMENTS
from repro.experiments.exp_language import run_table1
from repro.experiments.exp_modularity import run_fig12a, run_fig12b
from repro.experiments.exp_scaling import (
    run_fig13a,
    run_fig13b,
    run_fig13c,
    run_fig13d,
)
from repro.experiments.exp_caching import run_caching
from repro.experiments.exp_memory import run_memory
from repro.experiments.exp_recovery import run_recovery
from repro.experiments.exp_scheduling import run_scheduling
from repro.experiments.exp_workers import run_fig14a, run_fig14b, run_fig14c
from repro.cache import ResultCache, cached, describe_cache, parse_cache_spec
from repro.errors import CacheSpecError, FaultSpecError, MemSpecError
from repro.faults import FaultSchedule, faults_injected
from repro.mem import describe_memory, memory_managed, parse_mem_spec
from repro.obs import Tracer, format_breakdown, tracing, write_chrome_trace
from repro.sched import policy_catalogue, scheduling, valid_policy

__all__ = ["main", "QUICK_EXPERIMENTS"]

#: Reduced-scale variants (seconds instead of minutes).
QUICK_EXPERIMENTS = {
    "fig12a": run_fig12a,
    "fig12b": lambda: run_fig12b(num_candidates=1500, universe_size=4000),
    "table1": lambda: run_table1(sizes=(1500, 4000), universe_size=4000),
    "fig13a": lambda: run_fig13a(sizes=(10, 40)),
    "fig13b": lambda: run_fig13b(sizes=(50, 100)),
    "fig13c": lambda: run_fig13c(sizes=(1500, 4000), universe_size=4000),
    "fig13d": lambda: run_fig13d(sizes=(1, 4)),
    "fig14a": lambda: run_fig14a(num_docs=40),
    "fig14b": run_fig14b,
    "fig14c": lambda: run_fig14c(num_candidates=4000, universe_size=4000),
    "recovery": lambda: run_recovery(num_docs=40, num_paragraphs=1),
    "scheduling": lambda: run_scheduling(
        num_candidates=1500, universe_size=4000, num_paragraphs=1
    ),
    "memory": lambda: run_memory(
        num_docs=40, num_paragraphs=1, num_candidates=1500,
        universe_size=4000, num_tweets=40,
    ),
    "caching": lambda: run_caching(
        num_docs=40, num_paragraphs=1, num_candidates=1500,
        universe_size=4000, num_tweets=40,
    ),
}

#: Shown by the bare ``mem`` subcommand alongside the default policy.
MEM_SPEC_HELP = """\
spec grammar: comma-separated flags and key=value pairs
  on | off         enable / disable spilling + backpressure (default: off)
  ram=SIZE         clamp every node's RAM (e.g. 2gib, 512mib, 1.5gb)
  spill=FRACTION   start spilling above this fraction of RAM (default 0.8)
  admit=FRACTION   block admissions above this fraction (default 0.95)
  write_bw=SIZE    spill write bandwidth per second (default 100mib)
  read_bw=SIZE     restore read bandwidth per second (default 100mib)
  base=SECONDS     fixed per-spill/restore latency (default 0.002)
example: --mem on,ram=2gib,spill=0.7,admit=0.9"""

#: Shown by the bare ``cache`` subcommand alongside the default policy.
CACHE_SPEC_HELP = """\
spec grammar: comma-separated flags and key=value pairs
  on | off         enable / disable result caching (default: off)
  cap=SIZE         per-node capacity, LRU-evicted (e.g. 1gib, 256mib)
  lookup=SECONDS   virtual cost charged per cache hit (default 0.0001)
  epoch=N          generation counter; bump to invalidate everything
example: --cache on,cap=1gib,lookup=0.0001"""

#: Appended to fault-spec parse errors (the full grammar lives in
#: ``FaultSchedule.from_spec``'s docstring and ``docs/faults.md``).
FAULT_SPEC_HINT = """\
spec grammar: seed=N[,tasks=N,operators=N,nodes=N,links=N,replicas=N,\
ooms=N,horizon=S,outage=S,...] or a path to a schedule JSON
example: --faults seed=7,tasks=2,nodes=1 (inspect with 'repro faults SPEC')"""


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduce the tables and figures of 'Data Science Tasks "
            "Implemented with Scripts versus GUI-Based Workflows' (ICDE 2024)."
        ),
    )
    parser.add_argument(
        "experiments",
        nargs="*",
        metavar="experiment",
        help=f"which to run; choices: {', '.join(sorted(ALL_EXPERIMENTS))} "
        "(default: all).  Prefix with 'trace' to also print per-run "
        "virtual-time breakdowns, e.g. 'repro trace fig13d --quick'.",
    )
    parser.add_argument(
        "--quick", action="store_true", help="reduced dataset scales"
    )
    parser.add_argument(
        "--list", action="store_true", help="list experiments and exit"
    )
    parser.add_argument(
        "--trace",
        metavar="PATH",
        default=None,
        help="write a Chrome trace_event JSON of the run to PATH "
        "(implies tracing; open in chrome://tracing or Perfetto)",
    )
    parser.add_argument(
        "--faults",
        metavar="SPEC",
        default=None,
        help="run with a deterministic fault schedule installed; SPEC is "
        "'seed=7,tasks=2,nodes=1,...' or a path to a schedule JSON "
        "(inspect with the 'faults' subcommand: 'repro faults SPEC')",
    )
    parser.add_argument(
        "--scheduler",
        metavar="NAME",
        default=None,
        help="placement policy installed in both engines for the run "
        "(list with the 'sched' subcommand: 'repro sched')",
    )
    parser.add_argument(
        "--mem",
        metavar="SPEC",
        default=None,
        help="run with a memory-pressure policy installed; SPEC is "
        "'on,ram=2gib,spill=0.7,...' (inspect with the 'mem' "
        "subcommand: 'repro mem SPEC')",
    )
    parser.add_argument(
        "--cache",
        metavar="SPEC",
        default=None,
        help="run with lineage-keyed result caching installed; SPEC is "
        "'on,cap=1gib,lookup=0.0001,...' (inspect with the 'cache' "
        "subcommand: 'repro cache SPEC')",
    )
    return parser


def _fault_summary(injector) -> str:
    return (
        f"faults: {injector.injected} injected, {injector.retries} recovery "
        f"actions, {injector.skipped} skipped (seed="
        f"{injector.schedule.seed})"
    )


def _cache_summary(cache: ResultCache) -> str:
    return (
        f"cache: {cache.hits} hits, {cache.misses} misses "
        f"({cache.hit_rate:.0%} hit rate), {len(cache)} entries "
        f"({cache.total_bytes} bytes), {cache.evictions} evicted"
    )


def _unknown_experiments_message(unknown: List[str], registry) -> str:
    noun = "experiment" if len(unknown) == 1 else "experiments"
    lines = [f"repro: unknown {noun}: {', '.join(unknown)}", "valid experiment ids:"]
    lines.extend(f"  {name}" for name in sorted(registry))
    lines.append("(use --list to print them, 'trace <id>' for a time breakdown)")
    return "\n".join(lines)


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    registry = QUICK_EXPERIMENTS if args.quick else ALL_EXPERIMENTS
    if args.list:
        for name in sorted(registry):
            print(name)
        return 0
    names = list(args.experiments)
    if names and names[0] == "sched":
        if len(names) > 1:
            print("repro: sched: usage: repro sched", file=sys.stderr)
            return 2
        print(policy_catalogue())
        return 0
    if args.scheduler is not None and not valid_policy(args.scheduler):
        print(
            f"repro: --scheduler: unknown policy {args.scheduler!r}\n"
            + policy_catalogue(),
            file=sys.stderr,
        )
        return 2
    if names and names[0] == "mem":
        if len(names) > 2:
            print("repro: mem: usage: repro mem [SPEC]", file=sys.stderr)
            return 2
        spec = names[1] if len(names) == 2 else args.mem
        if spec is None:
            from repro.config import MemoryConfig

            print(describe_memory(MemoryConfig()))
            print()
            print(MEM_SPEC_HELP)
            return 0
        try:
            print(describe_memory(parse_mem_spec(spec)))
        except MemSpecError as exc:
            print(f"repro: mem: {exc}\n{MEM_SPEC_HELP}", file=sys.stderr)
            return 2
        return 0
    if names and names[0] == "cache":
        if len(names) > 2:
            print("repro: cache: usage: repro cache [SPEC]", file=sys.stderr)
            return 2
        spec = names[1] if len(names) == 2 else args.cache
        if spec is None:
            from repro.config import CacheConfig

            print(describe_cache(CacheConfig()))
            print()
            print(CACHE_SPEC_HELP)
            return 0
        try:
            print(describe_cache(parse_cache_spec(spec)))
        except CacheSpecError as exc:
            print(f"repro: cache: {exc}\n{CACHE_SPEC_HELP}", file=sys.stderr)
            return 2
        return 0
    if names and names[0] == "faults":
        spec = names[1] if len(names) == 2 else args.faults
        if spec is None or len(names) > 2:
            print("repro: faults: usage: repro faults SPEC", file=sys.stderr)
            return 2
        try:
            print(FaultSchedule.from_spec(spec).describe())
        except FaultSpecError as exc:
            print(f"repro: faults: {exc}\n{FAULT_SPEC_HINT}", file=sys.stderr)
            return 2
        return 0
    schedule = None
    if args.faults is not None:
        try:
            schedule = FaultSchedule.from_spec(args.faults)
        except FaultSpecError as exc:
            print(f"repro: --faults: {exc}\n{FAULT_SPEC_HINT}", file=sys.stderr)
            return 2
    mem_config = None
    if args.mem is not None:
        try:
            mem_config = parse_mem_spec(args.mem)
        except MemSpecError as exc:
            print(f"repro: --mem: {exc}\n{MEM_SPEC_HELP}", file=sys.stderr)
            return 2
    cache = None
    if args.cache is not None:
        try:
            cache = ResultCache(parse_cache_spec(args.cache))
        except CacheSpecError as exc:
            print(f"repro: --cache: {exc}\n{CACHE_SPEC_HELP}", file=sys.stderr)
            return 2
    trace_mode = bool(names) and names[0] == "trace"
    if trace_mode:
        names = names[1:]
    trace_mode = trace_mode or args.trace is not None
    names = names or sorted(registry)
    unknown = [name for name in names if name not in registry]
    if unknown:
        print(_unknown_experiments_message(unknown, registry), file=sys.stderr)
        return 2
    if args.trace is not None:
        # Fail fast on an unwritable target instead of crashing after
        # the experiments have already run.
        from pathlib import Path

        parent = Path(args.trace).resolve().parent
        if not parent.is_dir():
            print(
                f"repro: --trace: directory does not exist: {parent}",
                file=sys.stderr,
            )
            return 2
    fault_context = (
        faults_injected(schedule) if schedule is not None else nullcontext()
    )
    sched_context = (
        scheduling(args.scheduler) if args.scheduler is not None else nullcontext()
    )
    mem_context = (
        memory_managed(mem_config) if mem_config is not None else nullcontext()
    )
    cache_context = cached(cache) if cache is not None else nullcontext()
    if not trace_mode:
        with fault_context as injector, sched_context, mem_context, cache_context:
            for name in names:
                print(registry[name]().to_text())
                print()
        if injector is not None:
            print(_fault_summary(injector))
        if cache is not None:
            print(_cache_summary(cache))
        return 0
    tracer = Tracer()
    with fault_context as injector, tracing(tracer), sched_context, \
            mem_context, cache_context:
        for name in names:
            print(registry[name]().to_text())
            print()
    print(format_breakdown(tracer))
    if injector is not None:
        print(_fault_summary(injector))
    if cache is not None:
        print(_cache_summary(cache))
    if args.trace is not None:
        write_chrome_trace(tracer, args.trace)
        print(f"\nwrote Chrome trace: {args.trace}")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
