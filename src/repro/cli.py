"""Command-line interface: ``python -m repro [experiment ...]``.

Runs the requested experiment reproductions (default: all) and prints
each measured-vs-paper table.  ``--quick`` uses reduced dataset scales.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.experiments import ALL_EXPERIMENTS
from repro.experiments.exp_language import run_table1
from repro.experiments.exp_modularity import run_fig12a, run_fig12b
from repro.experiments.exp_scaling import (
    run_fig13a,
    run_fig13b,
    run_fig13c,
    run_fig13d,
)
from repro.experiments.exp_workers import run_fig14a, run_fig14b, run_fig14c

__all__ = ["main", "QUICK_EXPERIMENTS"]

#: Reduced-scale variants (seconds instead of minutes).
QUICK_EXPERIMENTS = {
    "fig12a": run_fig12a,
    "fig12b": lambda: run_fig12b(num_candidates=1500, universe_size=4000),
    "table1": lambda: run_table1(sizes=(1500, 4000), universe_size=4000),
    "fig13a": lambda: run_fig13a(sizes=(10, 40)),
    "fig13b": lambda: run_fig13b(sizes=(50, 100)),
    "fig13c": lambda: run_fig13c(sizes=(1500, 4000), universe_size=4000),
    "fig13d": lambda: run_fig13d(sizes=(1, 4)),
    "fig14a": lambda: run_fig14a(num_docs=40),
    "fig14b": run_fig14b,
    "fig14c": lambda: run_fig14c(num_candidates=4000, universe_size=4000),
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduce the tables and figures of 'Data Science Tasks "
            "Implemented with Scripts versus GUI-Based Workflows' (ICDE 2024)."
        ),
    )
    parser.add_argument(
        "experiments",
        nargs="*",
        metavar="experiment",
        help=f"which to run; choices: {', '.join(sorted(ALL_EXPERIMENTS))} "
        "(default: all)",
    )
    parser.add_argument(
        "--quick", action="store_true", help="reduced dataset scales"
    )
    parser.add_argument(
        "--list", action="store_true", help="list experiments and exit"
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    registry = QUICK_EXPERIMENTS if args.quick else ALL_EXPERIMENTS
    if args.list:
        for name in sorted(registry):
            print(name)
        return 0
    names = args.experiments or sorted(registry)
    unknown = [name for name in names if name not in registry]
    if unknown:
        parser.error(
            f"unknown experiments {unknown}; choices: {sorted(registry)}"
        )
    for name in names:
        print(registry[name]().to_text())
        print()
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
