"""Persistent job queue: ordered, bounded, JSON-resumable.

The queue is the durable half of the job service: every job ever
submitted stays in it (terminal jobs included, so a snapshot is a
complete audit log), insertion order is submission order, and the
whole structure round-trips through JSON — :meth:`JobQueue.save` /
:meth:`JobQueue.load` write and read a snapshot file, and
:meth:`JobQueue.requeue_nonterminal` resets in-flight jobs so a
resumed service re-admits them deterministically.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Union

from repro.errors import JobQueueFull, UnknownJob
from repro.jobs.model import Job, JobSpec

__all__ = ["JobQueue"]

#: Snapshot format version, bumped on incompatible layout changes.
SNAPSHOT_VERSION = 1


class JobQueue:
    """All jobs the service has ever seen, in submission order."""

    def __init__(self, max_queue: Optional[int] = None) -> None:
        if max_queue is not None and max_queue <= 0:
            raise ValueError(f"max_queue must be positive, got {max_queue}")
        #: Queue capacity counted over *waiting* (queued) jobs only.
        self.max_queue = max_queue
        #: job_id -> Job; dict order is submission order.
        self._jobs: Dict[str, Job] = {}
        self._next_id = 0
        #: Submissions rejected at capacity (monotonic).
        self.rejected = 0

    # -- submission --------------------------------------------------------

    def submit(
        self,
        spec: JobSpec,
        now: float,
        body_fn: Optional[Callable] = None,
    ) -> Job:
        """Append a new queued job; raises :class:`JobQueueFull` at capacity."""
        if self.max_queue is not None and self.depth >= self.max_queue:
            self.rejected += 1
            raise JobQueueFull(
                f"queue at capacity ({self.max_queue} queued jobs)"
            )
        job_id = f"job-{self._next_id:06d}"
        self._next_id += 1
        job = Job(job_id, spec, submitted_s=now)
        job._body_fn = body_fn
        self._jobs[job_id] = job
        return job

    # -- views -------------------------------------------------------------

    def get(self, job_id: str) -> Job:
        try:
            return self._jobs[job_id]
        except KeyError:
            raise UnknownJob(f"no job named {job_id!r}") from None

    def __len__(self) -> int:
        return len(self._jobs)

    def __iter__(self):
        return iter(self._jobs.values())

    def jobs(self) -> List[Job]:
        """Every job ever submitted, in submission order."""
        return list(self._jobs.values())

    def pending(self) -> List[Job]:
        """Jobs waiting for admission, in submission order."""
        return [job for job in self._jobs.values() if job.state == "queued"]

    @property
    def depth(self) -> int:
        """Number of jobs currently waiting for admission."""
        return sum(1 for job in self._jobs.values() if job.state == "queued")

    @property
    def drained(self) -> bool:
        """True when every job is in a terminal state."""
        return all(job.terminal for job in self._jobs.values())

    # -- persistence -------------------------------------------------------

    def to_json(self) -> Dict[str, Any]:
        return {
            "version": SNAPSHOT_VERSION,
            "next_id": self._next_id,
            "rejected": self.rejected,
            "max_queue": self.max_queue,
            "jobs": [job.to_json() for job in self._jobs.values()],
        }

    @classmethod
    def from_json(cls, doc: Dict[str, Any]) -> "JobQueue":
        version = doc.get("version")
        if version != SNAPSHOT_VERSION:
            raise ValueError(
                f"unsupported queue snapshot version {version!r} "
                f"(want {SNAPSHOT_VERSION})"
            )
        queue = cls(max_queue=doc.get("max_queue"))
        queue._next_id = int(doc["next_id"])
        queue.rejected = int(doc.get("rejected", 0))
        for job_doc in doc["jobs"]:
            job = Job.from_json(job_doc)
            queue._jobs[job.job_id] = job
        return queue

    def save(self, path: Union[str, Path]) -> Path:
        """Write a JSON snapshot to ``path`` and return it."""
        path = Path(path)
        path.write_text(json.dumps(self.to_json(), indent=2) + "\n")
        return path

    @classmethod
    def load(cls, path: Union[str, Path]) -> "JobQueue":
        """Read a snapshot written by :meth:`save`."""
        return cls.from_json(json.loads(Path(path).read_text()))

    def requeue_nonterminal(self) -> int:
        """Reset admitted/running jobs to ``queued`` (resume path).

        Jobs that were in flight when a snapshot was taken lost their
        execution; a resumed service re-admits them from scratch.
        Returns the number of jobs reset.
        """
        reset = 0
        for job in self._jobs.values():
            if not job.terminal and job.state != "queued":
                job.requeue()
                reset += 1
        return reset

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<JobQueue {len(self._jobs)} jobs, {self.depth} queued>"
