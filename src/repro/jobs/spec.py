"""Compact CLI specs for the job service: ``--jobs "on,rate=50,policy=drf"``.

A spec is a comma-separated list of flags and ``key=value`` pairs,
the same grammar family as ``--mem`` and ``--cache``:

==================  ====================================================
``on``              run the traffic generator through the service
``off``             keep the subsystem dormant (the default)
``seed=N``          traffic-generator seed (0)
``rate=F``          mean arrival rate, jobs per virtual second (10)
``horizon=F``       arrival-generation horizon, virtual seconds (60)
``tenants=N``       tenant population, drawn uniformly (4)
``burst=F``         burst amplitude; in-window rate is ``x (1+burst)``
``burst_period=F``  burst window period, seconds (300)
``burst_duty=F``    burst duty cycle, fraction of the period (0.1)
``diurnal=F``       diurnal sine amplitude in [0, 1] (0)
``period=F``        diurnal period, seconds (86400)
``policy=P``        admission ordering: ``fifo`` or ``drf`` (drf)
``placement=P``     node placement policy (``repro.sched``; drf)
``quota_running=N`` per-tenant cap on concurrently running jobs
``quota_cpus=N``    per-tenant cap on concurrently held vCPUs
``quota_ram=SIZE``  per-tenant cap on concurrently held RAM
``max_queue=N``     queue capacity; beyond it submissions are rejected
``cpus=N``          per-job vCPU demand (1)
``ram=SIZE``        per-job RAM demand (``1GiB``)
``duration=F``      mean profile-body duration, seconds (1.0)
``body=NAME``       job body (``profile``; see ``repro.jobs.bodies``)
``admit=F``         admission backpressure watermark override
==================  ====================================================

Sizes accept the binary suffixes of ``--mem`` (``2GiB``, ``512MiB``).
``repro jobs SPEC`` prints the configuration a spec expands to.
"""

from __future__ import annotations

from dataclasses import asdict, replace
from typing import Any, Dict

from repro.config import JobsConfig
from repro.errors import JobsSpecError, MemSpecError
from repro.mem.spec import format_size, parse_size
from repro.sched import valid_policy

__all__ = [
    "parse_jobs_spec",
    "describe_jobs",
    "jobs_config_to_json",
    "jobs_config_from_json",
]


def _parse_jobs_size(text: str) -> int:
    """``parse_size`` with the error rebranded for the ``--jobs`` matrix."""
    try:
        return parse_size(text)
    except MemSpecError as exc:
        raise JobsSpecError(str(exc)) from None


def parse_jobs_spec(spec: str) -> JobsConfig:
    """Parse a ``--jobs`` spec string into a :class:`JobsConfig`.

    >>> parse_jobs_spec("on,rate=50,tenants=8").rate_per_s
    50.0
    """
    text = spec.strip()
    if not text:
        raise JobsSpecError("empty jobs spec")
    kwargs: Dict[str, Any] = {}
    for part in text.split(","):
        part = part.strip()
        if not part:
            raise JobsSpecError(f"empty fragment in jobs spec {spec!r}")
        if "=" not in part:
            flag = part.lower()
            if flag == "on":
                kwargs["enabled"] = True
            elif flag == "off":
                kwargs["enabled"] = False
            else:
                raise JobsSpecError(
                    f"unknown jobs spec flag {part!r} (want 'on', 'off' or "
                    "key=value)"
                )
            continue
        key, _, value = part.partition("=")
        key = key.strip().lower()
        value = value.strip()
        try:
            if key == "seed":
                kwargs["seed"] = int(value)
            elif key == "rate":
                kwargs["rate_per_s"] = float(value)
            elif key == "horizon":
                kwargs["horizon_s"] = float(value)
            elif key == "tenants":
                kwargs["tenants"] = int(value)
            elif key == "burst":
                kwargs["burst"] = float(value)
            elif key == "burst_period":
                kwargs["burst_period_s"] = float(value)
            elif key == "burst_duty":
                kwargs["burst_duty"] = float(value)
            elif key == "diurnal":
                kwargs["diurnal"] = float(value)
            elif key == "period":
                kwargs["diurnal_period_s"] = float(value)
            elif key == "policy":
                kwargs["policy"] = value
            elif key == "placement":
                if not valid_policy(value):
                    raise JobsSpecError(
                        f"unknown placement policy {value!r} "
                        "(see 'repro sched' for the catalogue)"
                    )
                kwargs["placement"] = value
            elif key == "quota_running":
                kwargs["quota_running"] = int(value)
            elif key == "quota_cpus":
                kwargs["quota_cpus"] = int(value)
            elif key == "quota_ram":
                kwargs["quota_ram_bytes"] = _parse_jobs_size(value)
            elif key == "max_queue":
                kwargs["max_queue"] = int(value)
            elif key == "cpus":
                kwargs["cpus"] = int(value)
            elif key == "ram":
                kwargs["ram_bytes"] = _parse_jobs_size(value)
            elif key == "duration":
                kwargs["duration_s"] = float(value)
            elif key == "body":
                kwargs["body"] = value
            elif key == "admit":
                kwargs["admission_watermark"] = float(value)
            else:
                raise JobsSpecError(f"unknown jobs spec key {key!r}")
        except ValueError:
            raise JobsSpecError(
                f"bad value for jobs spec key {key!r}: {value!r}"
            ) from None
    try:
        return replace(JobsConfig(), **kwargs)
    except ValueError as exc:
        raise JobsSpecError(str(exc)) from None


def jobs_config_to_json(config: JobsConfig) -> Dict[str, Any]:
    """Plain-JSON dump of a config (service snapshots)."""
    return asdict(config)


def jobs_config_from_json(doc: Dict[str, Any]) -> JobsConfig:
    """Inverse of :func:`jobs_config_to_json` (validates on construction)."""
    return JobsConfig(**doc)


def _fmt_quota(value, size: bool = False) -> str:
    if value is None:
        return "unlimited"
    return format_size(value) if size else str(value)


def describe_jobs(config: JobsConfig) -> str:
    """Aligned text description of a jobs config (the CLI's output)."""
    shape = []
    if config.burst > 0.0:
        shape.append(
            f"bursts x{1 + config.burst:g} for {config.burst_duty:.0%} of "
            f"every {config.burst_period_s:g}s"
        )
    if config.diurnal > 0.0:
        shape.append(
            f"diurnal +/-{config.diurnal:.0%} over {config.diurnal_period_s:g}s"
        )
    lines = [
        "job service: "
        + ("traffic generator ON" if config.enabled else "dormant (seed path)"),
        f"  arrivals           Poisson {config.rate_per_s:g}/s for "
        f"{config.horizon_s:g}s (seed {config.seed})",
        f"  shape              {'; '.join(shape) if shape else 'flat'}",
        f"  tenants            {config.tenants}",
        f"  admission          {config.policy} ordering, "
        f"placement={config.placement}",
        f"  quotas/tenant      running={_fmt_quota(config.quota_running)}, "
        f"cpus={_fmt_quota(config.quota_cpus)}, "
        f"ram={_fmt_quota(config.quota_ram_bytes, size=True)}",
        f"  queue capacity     {_fmt_quota(config.max_queue)}",
        f"  job demand         {config.cpus} vCPU, "
        f"{format_size(config.ram_bytes) if config.ram_bytes else '0B'}, "
        f"body={config.body} (~{config.duration_s:g}s)",
        f"  admit watermark    "
        + (
            f"{config.admission_watermark:.0%} of node RAM"
            if config.admission_watermark is not None
            else "from memory policy (repro.mem)"
        ),
    ]
    return "\n".join(lines)
