"""Seeded open-loop traffic generator: Poisson arrivals, diurnal bursts.

The generator produces a deterministic arrival list from a
:class:`repro.config.JobsConfig` — *open loop* because arrival times
never depend on how fast the service drains the queue (the defining
property of production traffic, and the reason queueing latency blows
up past the saturation point instead of politely backing off).

Arrivals are a non-homogeneous Poisson process sampled by thinning
(Lewis & Shedler): candidate arrivals are drawn from a homogeneous
process at the peak rate, then each candidate is kept with probability
``rate(t) / peak_rate``.  The instantaneous rate is

``rate(t) = rate_per_s x (1 + diurnal * sin(2 pi t / diurnal_period))
x (1 + burst  if t is inside a burst window else 1)``

where a burst window is the first ``burst_duty`` fraction of every
``burst_period_s``.  Each :meth:`TrafficGenerator.arrivals` call is
driven by a *fresh* ``random.Random(seed)`` so the same config always
yields the same traffic — the determinism contract every layer of this
repo keeps — including on *repeated* calls (an earlier revision reused
one instance-level RNG, so a second call continued the stream and
silently produced different arrivals).

Majorant audit: thinning is only correct when the candidate rate
dominates ``rate_at(t)`` everywhere; otherwise arrivals in the exceeded
windows are silently under-sampled.  :attr:`TrafficGenerator.peak_rate`
is exact — ``sin <= 1`` bounds the diurnal factor by ``1 + diurnal``,
and the burst factor ``1 + burst`` is applied to the envelope whenever
``burst > 0`` (burst windows always exist for a positive duty cycle) —
and the sampling loop *checks* the bound on every candidate, raising
:class:`repro.errors.TrafficInvariantError` rather than degrading
silently if a future rate-shape change breaks it.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import List

from repro.config import JobsConfig
from repro.errors import TrafficInvariantError
from repro.jobs.bodies import GEN_BODIES
from repro.jobs.model import JobSpec

__all__ = ["Arrival", "TrafficGenerator", "merge_arrivals"]


@dataclass(frozen=True)
class Arrival:
    """One generated submission: when, and what."""

    time_s: float
    spec: JobSpec


class TrafficGenerator:
    """Deterministic open-loop arrival stream for one config."""

    def __init__(self, config: JobsConfig) -> None:
        self.config = config

    # -- rate shape --------------------------------------------------------

    def rate_at(self, t: float) -> float:
        """Instantaneous arrival rate (jobs per virtual second)."""
        config = self.config
        rate = config.rate_per_s
        if config.diurnal > 0.0:
            rate *= 1.0 + config.diurnal * math.sin(
                2.0 * math.pi * t / config.diurnal_period_s
            )
        if config.burst > 0.0 and self.in_burst(t):
            rate *= 1.0 + config.burst
        return max(rate, 0.0)

    def in_burst(self, t: float) -> bool:
        """True inside a burst window (first ``duty`` of each period)."""
        config = self.config
        phase = math.fmod(t, config.burst_period_s)
        return phase < config.burst_duty * config.burst_period_s

    @property
    def peak_rate(self) -> float:
        """Upper bound on :meth:`rate_at` (the thinning envelope)."""
        config = self.config
        rate = config.rate_per_s * (1.0 + config.diurnal)
        if config.burst > 0.0:
            rate *= 1.0 + config.burst
        return rate

    # -- sampling ----------------------------------------------------------

    def arrivals(self) -> List[Arrival]:
        """The full arrival list over ``horizon_s``, time-ordered.

        Deterministic per config *and per call*: every invocation
        reseeds from ``config.seed``, so calling this twice (or on two
        generators built from equal configs) yields identical lists.
        """
        config = self.config
        rng = random.Random(config.seed)
        peak = self.peak_rate
        out: List[Arrival] = []
        t = 0.0
        while True:
            # Homogeneous candidate at the peak rate ...
            t += rng.expovariate(peak)
            if t >= config.horizon_s:
                break
            # ... thinned down to the instantaneous rate.
            rate = self.rate_at(t)
            if rate > peak:
                raise TrafficInvariantError(
                    f"thinning majorant violated at t={t:.3f}s: "
                    f"rate_at={rate:.6f} > peak_rate={peak:.6f} "
                    f"(arrivals would be under-sampled)"
                )
            if rng.random() * peak > rate:
                continue
            out.append(Arrival(time_s=t, spec=self._draw_spec(rng)))
        return out

    def _draw_spec(self, rng: random.Random) -> JobSpec:
        config = self.config
        tenant = f"tenant-{rng.randrange(config.tenants)}"
        # Exponential duration jitter around the configured mean keeps
        # per-job service times varied but strictly positive.
        duration = max(1e-3, rng.expovariate(1.0 / config.duration_s))
        body = config.body
        if body == "gen":
            # Corpus mode: each arrival draws one generated family ×
            # paradigm body uniformly.  The extra RNG draw happens only
            # here, so every other body name keeps its exact stream.
            body = GEN_BODIES[rng.randrange(len(GEN_BODIES))]
        return JobSpec(
            tenant=tenant,
            body=body,
            cpus=config.cpus,
            ram_bytes=config.ram_bytes,
            duration_s=duration,
        )


def merge_arrivals(*streams: List[Arrival]) -> List[Arrival]:
    """Merge independently generated streams into one ordered list.

    Lets an experiment model asymmetric tenants (a flooding tenant and
    a trickling one) by generating each tenant's stream with its own
    config/seed and interleaving by arrival time.  Ties break by
    stream position, keeping the merge deterministic.
    """
    indexed = [
        (arrival.time_s, position, arrival)
        for position, stream in enumerate(streams)
        for arrival in stream
    ]
    indexed.sort(key=lambda item: (item[0], item[1]))
    return [arrival for _t, _p, arrival in indexed]
