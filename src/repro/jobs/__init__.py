"""Multi-tenant job service: ``repro.jobs``.

The paper compares the script and workflow paradigms one run at a
time, but the systems it studies are *services*: Texera hosts many
users' workflows on one shared deployment, and production script
clusters (Ray, Snakemake farms) queue many tenants' pipelines onto
shared machines.  ROADMAP names this the "millions of users" unlock.
This package is that control plane, built from the layers beneath it:

* :class:`JobSpec` / :class:`Job` — the submission model and its state
  machine (``queued -> admitted -> running -> completed | failed |
  cancelled``), JSON round-trippable;
* :class:`JobQueue` — the persistent queue: submission-ordered,
  optionally bounded, snapshot/resume through plain JSON files;
* :class:`FairShare` — per-tenant quotas plus admission ordering
  (``fifo`` or weighted hierarchical dominant-resource fairness);
* :class:`TrafficGenerator` — a seeded open-loop arrival stream
  (Poisson, diurnal sine, periodic bursts);
* :class:`JobService` — the dispatcher tying them together: fair-share
  ordering, quota checks, RAM backpressure at the :mod:`repro.mem`
  admission watermark, placement through :mod:`repro.sched` (the
  ``drf`` policy by default), ``jobs.*`` telemetry via
  :mod:`repro.obs`.

Enabling the service follows the pattern of every other layer:

>>> from repro.jobs import jobs_enabled
>>> with jobs_enabled("on,rate=50,tenants=8,policy=drf") as config:
...     summary = JobService(config).simulate()

or from the command line with ``python -m repro jobs SPEC`` /
``--jobs SPEC`` (``python -m repro jobs`` prints the grammar).

Dormant by default: nothing in the engines consults this package, and
a single job submitted by one tenant runs its body on a fresh cluster
exactly as a direct engine run would — bit-identical outputs and
virtual timings, pinned by ``tests/jobs/test_timing_pin.py``.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator, Optional, Union

from repro.config import JobsConfig
from repro.jobs.bodies import (
    JobResult,
    body_catalogue,
    register_body,
    resolve_body,
)
from repro.jobs.fairshare import FairShare, TenantAccount, tenant_levels
from repro.jobs.model import (
    ADMITTED,
    CANCELLED,
    COMPLETED,
    FAILED,
    QUEUED,
    RUNNING,
    STATES,
    TERMINAL_STATES,
    Job,
    JobSpec,
)
from repro.jobs.queue import JobQueue
from repro.jobs.service import JobService, percentile
from repro.jobs.spec import (
    describe_jobs,
    jobs_config_from_json,
    jobs_config_to_json,
    parse_jobs_spec,
)
from repro.jobs.traffic import Arrival, TrafficGenerator, merge_arrivals

__all__ = [
    "JobsConfig",
    "JobSpec",
    "Job",
    "JobQueue",
    "JobService",
    "JobResult",
    "FairShare",
    "TenantAccount",
    "tenant_levels",
    "TrafficGenerator",
    "Arrival",
    "merge_arrivals",
    "register_body",
    "resolve_body",
    "body_catalogue",
    "parse_jobs_spec",
    "describe_jobs",
    "jobs_config_to_json",
    "jobs_config_from_json",
    "percentile",
    "QUEUED",
    "ADMITTED",
    "RUNNING",
    "COMPLETED",
    "FAILED",
    "CANCELLED",
    "STATES",
    "TERMINAL_STATES",
    "install_jobs",
    "uninstall_jobs",
    "current_jobs_config",
    "jobs_enabled",
]

#: The globally installed config, if any (see :func:`install_jobs`).
_installed: Optional[JobsConfig] = None


def _coerce(config_or_spec: Union[JobsConfig, str]) -> JobsConfig:
    if isinstance(config_or_spec, JobsConfig):
        return config_or_spec
    return parse_jobs_spec(config_or_spec)


def install_jobs(config_or_spec: Union[JobsConfig, str]) -> JobsConfig:
    """Make a jobs config the session default.

    Accepts a :class:`JobsConfig` or a spec string (validated eagerly,
    so a typo fails at install time rather than mid-run).
    """
    global _installed
    config = _coerce(config_or_spec)
    _installed = config
    return config


def uninstall_jobs() -> None:
    """Clear the globally installed config (back to the dormant default)."""
    global _installed
    _installed = None


def current_jobs_config() -> Optional[JobsConfig]:
    """The globally installed jobs config, or None."""
    return _installed


@contextmanager
def jobs_enabled(config_or_spec: Union[JobsConfig, str]) -> Iterator[JobsConfig]:
    """Install a jobs config for the duration of a ``with`` block.

    >>> with jobs_enabled("on,rate=50") as config:
    ...     summary = JobService(config).simulate()
    """
    global _installed
    config = _coerce(config_or_spec)
    previous = _installed
    _installed = config
    try:
        yield config
    finally:
        _installed = previous
