"""Job model: spec, state machine and JSON round-trip.

A :class:`JobSpec` is the immutable *what* of a submission — tenant,
body name, resource demand, profile duration.  A :class:`Job` is the
mutable control-plane record wrapping one spec: the state machine

.. code-block:: text

   queued ──> admitted ──> running ──> completed
     │            │            ├────> failed
     └────────────┴────────────┴────> cancelled

plus the timestamps the service's latency metrics are computed from.
Transitions outside the arrows raise
:class:`repro.errors.InvalidJobTransition`, so a bug in the service
(double admission, completing a cancelled job) fails loudly instead of
silently corrupting the queue.

Jobs serialize to plain JSON dicts (:meth:`Job.to_json` /
:meth:`Job.from_json`) — the persistence substrate of
:class:`repro.jobs.JobQueue`.  The runtime-only body callable is *not*
serialized; a resumed queue re-resolves bodies by name from the
registry (:mod:`repro.jobs.bodies`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, Optional

from repro.config import GIB
from repro.errors import InvalidJobTransition

__all__ = [
    "QUEUED",
    "ADMITTED",
    "RUNNING",
    "COMPLETED",
    "FAILED",
    "CANCELLED",
    "STATES",
    "TERMINAL_STATES",
    "TRANSITIONS",
    "JobSpec",
    "Job",
]

#: State-machine vocabulary (also the wire strings in JSON snapshots).
QUEUED = "queued"
ADMITTED = "admitted"
RUNNING = "running"
COMPLETED = "completed"
FAILED = "failed"
CANCELLED = "cancelled"

STATES = (QUEUED, ADMITTED, RUNNING, COMPLETED, FAILED, CANCELLED)

#: States no job ever leaves.
TERMINAL_STATES = frozenset({COMPLETED, FAILED, CANCELLED})

#: state -> states reachable in one transition.
TRANSITIONS: Dict[str, frozenset] = {
    QUEUED: frozenset({ADMITTED, FAILED, CANCELLED}),
    ADMITTED: frozenset({RUNNING, FAILED, CANCELLED}),
    RUNNING: frozenset({COMPLETED, FAILED, CANCELLED}),
    COMPLETED: frozenset(),
    FAILED: frozenset(),
    CANCELLED: frozenset(),
}


@dataclass(frozen=True)
class JobSpec:
    """What one submission asks for (immutable)."""

    #: Submitting tenant; hierarchical names use ``/`` separators
    #: (``team-a/alice``) and fair-share aggregates at every level.
    tenant: str = "tenant-0"
    #: Body name in the registry (:mod:`repro.jobs.bodies`).
    body: str = "profile"
    #: vCPUs the job occupies on its node while running.
    cpus: int = 1
    #: RAM the job reserves on its node while running.
    ram_bytes: int = 1 * GIB
    #: Occupancy duration for ``profile`` bodies; task bodies replace
    #: it with the task's own measured virtual elapsed time.
    duration_s: float = 1.0

    def __post_init__(self) -> None:
        if not self.tenant:
            raise ValueError("tenant must be non-empty")
        if not self.body:
            raise ValueError("body must be non-empty")
        if self.cpus < 1:
            raise ValueError(f"cpus must be >= 1, got {self.cpus}")
        if self.ram_bytes < 0:
            raise ValueError(f"ram_bytes must be >= 0, got {self.ram_bytes}")
        if self.duration_s <= 0:
            raise ValueError(f"duration_s must be positive, got {self.duration_s}")

    def to_json(self) -> Dict[str, Any]:
        return {
            "tenant": self.tenant,
            "body": self.body,
            "cpus": self.cpus,
            "ram_bytes": self.ram_bytes,
            "duration_s": self.duration_s,
        }

    @classmethod
    def from_json(cls, doc: Dict[str, Any]) -> "JobSpec":
        return cls(
            tenant=doc["tenant"],
            body=doc["body"],
            cpus=int(doc["cpus"]),
            ram_bytes=int(doc["ram_bytes"]),
            duration_s=float(doc["duration_s"]),
        )


class Job:
    """One submission's control-plane record (mutable state machine)."""

    __slots__ = (
        "job_id",
        "spec",
        "state",
        "node",
        "error",
        "submitted_s",
        "admitted_s",
        "started_s",
        "finished_s",
        "_body_fn",
        "result",
    )

    def __init__(self, job_id: str, spec: JobSpec, submitted_s: float) -> None:
        self.job_id = job_id
        self.spec = spec
        self.state = QUEUED
        #: Node the job was placed on (set at admission).
        self.node: Optional[str] = None
        #: Failure description for ``failed`` jobs.
        self.error: Optional[str] = None
        self.submitted_s = submitted_s
        self.admitted_s: Optional[float] = None
        self.started_s: Optional[float] = None
        self.finished_s: Optional[float] = None
        #: Runtime-only override body (never serialized); ``None``
        #: means resolve :attr:`JobSpec.body` from the registry.
        self._body_fn: Optional[Callable] = None
        #: Runtime-only body result (never serialized).
        self.result: Any = None

    # -- state machine -----------------------------------------------------

    @property
    def terminal(self) -> bool:
        return self.state in TERMINAL_STATES

    @property
    def queue_latency_s(self) -> Optional[float]:
        """Virtual seconds spent waiting for admission, once admitted."""
        if self.admitted_s is None:
            return None
        return self.admitted_s - self.submitted_s

    def _transition(self, new_state: str) -> None:
        if new_state not in TRANSITIONS[self.state]:
            raise InvalidJobTransition(
                f"job {self.job_id}: cannot go {self.state} -> {new_state}"
            )
        self.state = new_state

    def admit(self, now: float, node: str) -> None:
        """queued -> admitted, recording the placement decision."""
        self._transition(ADMITTED)
        self.admitted_s = now
        self.node = node

    def start(self, now: float) -> None:
        """admitted -> running."""
        self._transition(RUNNING)
        self.started_s = now

    def complete(self, now: float, result: Any = None) -> None:
        """running -> completed."""
        self._transition(COMPLETED)
        self.finished_s = now
        self.result = result

    def fail(self, now: float, error: str) -> None:
        """any non-terminal state -> failed."""
        self._transition(FAILED)
        self.finished_s = now
        self.error = error

    def cancel(self, now: float) -> None:
        """any non-terminal state -> cancelled."""
        self._transition(CANCELLED)
        self.finished_s = now

    def requeue(self) -> None:
        """Reset an in-flight job to ``queued`` (queue resume path).

        Only non-terminal jobs may be requeued; terminal jobs keep
        their outcome across snapshots.
        """
        if self.terminal:
            raise InvalidJobTransition(
                f"job {self.job_id}: cannot requeue terminal state {self.state}"
            )
        self.state = QUEUED
        self.node = None
        self.admitted_s = None
        self.started_s = None

    # -- persistence -------------------------------------------------------

    def to_json(self) -> Dict[str, Any]:
        return {
            "job_id": self.job_id,
            "spec": self.spec.to_json(),
            "state": self.state,
            "node": self.node,
            "error": self.error,
            "submitted_s": self.submitted_s,
            "admitted_s": self.admitted_s,
            "started_s": self.started_s,
            "finished_s": self.finished_s,
        }

    @classmethod
    def from_json(cls, doc: Dict[str, Any]) -> "Job":
        state = doc["state"]
        if state not in STATES:
            raise ValueError(f"unknown job state {state!r}")
        job = cls(
            doc["job_id"], JobSpec.from_json(doc["spec"]), float(doc["submitted_s"])
        )
        job.state = state
        job.node = doc.get("node")
        job.error = doc.get("error")
        for stamp in ("admitted_s", "started_s", "finished_s"):
            value = doc.get(stamp)
            setattr(job, stamp, None if value is None else float(value))
        return job

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Job {self.job_id} tenant={self.spec.tenant!r} "
            f"body={self.spec.body!r} state={self.state}>"
        )
