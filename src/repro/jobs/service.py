"""The job service: admission control plane on a shared cluster.

One :class:`JobService` owns a persistent :class:`JobQueue`, a
:class:`FairShare` ledger, a :class:`repro.sched.Scheduler` and one
shared simulated cluster.  Its dispatcher is a simulation process that
admits pending jobs whenever capacity frees up:

1. order pending jobs by the fair-share policy (``fifo`` or
   hierarchical DRF);
2. skip jobs whose tenant is at quota (they stay queued; another
   tenant's job may still go);
3. stop at the head of the line when no node can take the job —
   either every node's vCPUs are held, or RAM admission would cross
   the backpressure watermark shared with :mod:`repro.mem`;
4. land the job on a node through the placement policy
   (:class:`repro.sched.DrfPolicy` by default), reserve its resources,
   and run it.

Running a job means executing its *body* — for paper-task bodies a
whole pipeline run on its own fresh cluster, exactly as a direct
engine run would execute it (this is the dormant invariant: the body
result and its virtual elapsed time are bit-identical to running the
task without the service) — then occupying the reserved vCPUs and RAM
on the shared cluster for the body's measured duration.

Everything is deterministic: the traffic generator is seeded, the
dispatcher wakes in event order, and ties in fair-share ordering break
by submission order, so a config maps to exactly one execution.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Union

from repro.cluster import Cluster, build_cluster
from repro.config import ElasticConfig, JobsConfig
from repro.errors import InvalidJobTransition, JobQueueFull
from repro.jobs.bodies import JobResult, resolve_body
from repro.jobs.fairshare import FairShare
from repro.jobs.model import Job, JobSpec
from repro.jobs.queue import JobQueue
from repro.jobs.spec import jobs_config_from_json, jobs_config_to_json
from repro.jobs.traffic import Arrival, TrafficGenerator
from repro.sched import PlacementRequest, Scheduler
from repro.sim import Environment

__all__ = ["JobService", "percentile"]


def percentile(values: List[float], q: float) -> Optional[float]:
    """Nearest-rank percentile (``q`` in [0, 100]); None on empty input."""
    if not values:
        return None
    if not 0.0 <= q <= 100.0:
        raise ValueError(f"percentile must be in [0, 100], got {q}")
    ordered = sorted(values)
    rank = max(1, -(-len(ordered) * q // 100))  # ceil without math import
    return ordered[int(rank) - 1]


class JobService:
    """Multi-tenant admission control over one shared cluster."""

    def __init__(
        self,
        config: Optional[JobsConfig] = None,
        cluster: Optional[Cluster] = None,
        queue: Optional[JobQueue] = None,
        elastic: Optional[Union[ElasticConfig, str]] = None,
    ) -> None:
        self.config = config or JobsConfig()
        if cluster is None:
            cluster = build_cluster(Environment())
        self.cluster = cluster
        self.env = cluster.env
        self.scheduler = Scheduler(cluster, policy=self.config.placement)
        self.queue = queue if queue is not None else JobQueue(
            max_queue=self.config.max_queue
        )
        self.fairshare = FairShare(
            policy=self.config.policy,
            total_cpus=sum(node.num_cpus for node in cluster.workers),
            total_ram_bytes=sum(node.ram_limit for node in cluster.workers),
            quota_running=self.config.quota_running,
            quota_cpus=self.config.quota_cpus,
            quota_ram_bytes=self.config.quota_ram_bytes,
        )
        #: Admission backpressure watermark: explicit override, else the
        #: resolved memory policy's (``repro.mem``) — the "route
        #: admission through repro.mem watermarks" contract.
        self.admission_watermark = (
            self.config.admission_watermark
            if self.config.admission_watermark is not None
            else cluster.memory.config.admission_watermark
        )
        #: vCPUs held per node by admitted-but-unfinished jobs.  The
        #: service does its own CPU ledger so admission never overbooks
        #: a node and jobs never stall inside ``node.compute``.
        self._cpus_held: Dict[str, int] = {
            node.name: 0 for node in cluster.workers
        }
        #: Jobs admitted and not yet terminal.
        self.running = 0
        #: Arrivals not yet submitted (open-loop traffic bookkeeping).
        self._arrivals_pending = 0
        self._wake = self.env.event()
        #: Telemetry mirrors (also emitted through ``repro.obs``).
        self.peak_queue_depth = 0
        self.blocked = {"quota": 0, "capacity": 0, "backpressure": 0, "placement": 0}
        self.requeued = 0
        #: Elastic membership (``repro.elastic``), resolved like every
        #: other layer: explicit argument, else the globally installed
        #: config, else the cluster config's field (dormant default).
        from repro.elastic import (  # local: repro.elastic imports repro.config only
            Autoscaler,
            current_elastic_config,
            parse_elastic_spec,
        )

        if isinstance(elastic, str):
            elastic = parse_elastic_spec(elastic)
        if elastic is None:
            elastic = current_elastic_config()
        if elastic is None:
            elastic = getattr(cluster.config, "elastic", None)
        self.elastic = elastic
        self.autoscaler = (
            Autoscaler(self, elastic)
            if elastic is not None and elastic.enabled
            else None
        )
        cluster.add_membership_listener(self._membership_changed)

    # -- membership (repro.elastic) -----------------------------------------

    def _membership_changed(self, action: str, node) -> None:
        if action == "add":
            self._cpus_held.setdefault(node.name, 0)
        else:
            self._cpus_held.pop(node.name, None)
        fs = self.fairshare
        fs.total_cpus = sum(n.num_cpus for n in self.cluster.workers)
        fs.total_ram_bytes = sum(n.ram_limit for n in self.cluster.workers)
        # Either direction can unblock the dispatcher: an add brings
        # capacity, a completed drain settles the draining set.
        self._kick()

    # -- submission --------------------------------------------------------

    def submit(self, spec: JobSpec, body_fn: Optional[Callable] = None) -> Job:
        """Queue one job; raises :class:`JobQueueFull` at capacity.

        Jobs whose demand can *never* be satisfied — more vCPUs than
        any node has, more RAM than the admission watermark allows on
        any node, or a demand above the tenant's own quota ceiling —
        fail immediately instead of deadlocking the queue.
        """
        now = self.env.now
        tracer = self.env.tracer
        try:
            job = self.queue.submit(spec, now, body_fn=body_fn)
        except JobQueueFull:
            if tracer.enabled:
                tracer.metrics.counter("jobs.rejected", tenant=spec.tenant).inc()
            raise
        if tracer.enabled:
            tracer.metrics.counter("jobs.submitted", tenant=spec.tenant).inc()
        impossible = self._never_admissible(spec)
        if impossible is not None:
            job.fail(now, impossible)
            self._job_terminal(job)
            return job
        self._note_depth()
        self._kick()
        return job

    def _never_admissible(self, spec: JobSpec) -> Optional[str]:
        workers = self.cluster.workers
        max_cpus = max(node.num_cpus for node in workers)
        ceiling = max(
            node.ram_limit * self.admission_watermark for node in workers
        )
        if self.autoscaler is not None:
            # The fleet can grow: a job that fits the autoscaler's
            # provisioned shape is admissible even if no current node
            # can take it.
            shape = self.autoscaler.machine
            max_cpus = max(max_cpus, shape.num_cpus)
            ceiling = max(ceiling, shape.ram_bytes * self.admission_watermark)
        if spec.cpus > max_cpus:
            return f"demand of {spec.cpus} vCPUs exceeds every node"
        if spec.ram_bytes > ceiling:
            return (
                f"demand of {spec.ram_bytes} B exceeds the admission "
                f"watermark on every node"
            )
        fs = self.fairshare
        if fs.quota_cpus is not None and spec.cpus > fs.quota_cpus:
            return f"demand of {spec.cpus} vCPUs exceeds the tenant vCPU quota"
        if fs.quota_ram_bytes is not None and spec.ram_bytes > fs.quota_ram_bytes:
            return f"demand of {spec.ram_bytes} B exceeds the tenant RAM quota"
        return None

    def cancel(self, job_id: str) -> Job:
        """Cancel a *queued* job (in-flight jobs run to completion)."""
        job = self.queue.get(job_id)
        if job.state != "queued":
            raise InvalidJobTransition(
                f"job {job_id} is {job.state}; only queued jobs can be "
                "cancelled through the service"
            )
        job.cancel(self.env.now)
        self._job_terminal(job)
        self._kick()
        return job

    # -- dispatch ----------------------------------------------------------

    def _kick(self) -> None:
        """Wake the dispatcher (idempotent within one event step)."""
        if not self._wake.triggered:
            self._wake.succeed()

    def _dispatch(self):
        """Dispatcher process: admit until traffic and queue drain."""
        while True:
            self._admit_pending()
            if self._arrivals_pending == 0 and self.running == 0:
                stuck = self.queue.pending()
                if not stuck:
                    return
                if self.autoscaler is not None and self.autoscaler.request_capacity():
                    # The fleet can still grow (or is mid-drain): wait
                    # for the membership change to kick us rather than
                    # failing jobs a provisioning node could admit.
                    yield self._wake
                    self._wake = self.env.event()
                    continue
                # Nothing is running and no arrivals remain, yet these
                # jobs did not admit: nothing can ever unblock them
                # (e.g. an injected ``oom`` fault clamped node RAM
                # after submission).  Fail loudly, never deadlock.
                for job in stuck:
                    job.fail(
                        self.env.now,
                        "unadmittable: no node can ever fit the job",
                    )
                    self._job_terminal(job)
                return
            yield self._wake
            self._wake = self.env.event()

    def _admit_pending(self) -> None:
        """Admit as many pending jobs as quotas and capacity allow."""
        while True:
            pending = self.queue.pending()
            if not pending:
                return
            admitted = False
            for job in self.fairshare.ordering(pending):
                reason = self.fairshare.quota_blocked(job)
                if reason is not None:
                    self._note_blocked("quota", job)
                    continue
                node = self._fitting_node(job)
                if node is None:
                    # Head-of-line: the cluster is out of capacity for
                    # the fairest admissible job; later jobs must wait
                    # too, or starvation-by-smallness would follow.
                    return
                self._admit(job, node)
                admitted = True
                break  # re-derive fair-share ordering after each charge
            if not admitted:
                return

    def _fitting_node(self, job: Job):
        """Any node with free vCPUs and RAM under the watermark, or None."""
        fits = False
        draining = self.cluster.draining
        for node in self.cluster.workers:
            if node.name in draining:
                continue
            if self._cpus_held[node.name] + job.spec.cpus > node.num_cpus:
                continue
            fits = True
            if (
                node.ram_used + job.spec.ram_bytes
                <= self.admission_watermark * node.ram_limit
            ):
                return node
        # Distinguish "no cpus anywhere" from "RAM backpressure".
        self._note_blocked("capacity" if not fits else "backpressure", job)
        return None

    def _admit(self, job: Job, fallback_node) -> None:
        spec = job.spec
        node = self.scheduler.place(
            PlacementRequest(
                "job",
                label=job.job_id,
                tenant=spec.tenant,
                cpus=spec.cpus,
                ram_bytes=spec.ram_bytes,
            )
        )
        if (
            self._cpus_held[node.name] + spec.cpus > node.num_cpus
            or node.ram_used + spec.ram_bytes
            > self.admission_watermark * node.ram_limit
        ):
            # The placement policy (e.g. plain round_robin) picked a
            # node that cannot take the job right now; fall back to the
            # fitting node the admission check already found.
            self.scheduler.release(node.name)
            self.blocked["placement"] += 1
            node = fallback_node
            self.scheduler.place(
                PlacementRequest(
                    "job",
                    label=job.job_id,
                    tenant=spec.tenant,
                    cpus=spec.cpus,
                    ram_bytes=spec.ram_bytes,
                )
            )
        now = self.env.now
        job.admit(now, node.name)
        self._cpus_held[node.name] += spec.cpus
        node.allocate_ram(spec.ram_bytes)
        self.fairshare.charge(job)
        self.running += 1
        tracer = self.env.tracer
        if tracer.enabled:
            tracer.metrics.counter("jobs.admitted", tenant=spec.tenant).inc()
            tracer.metrics.gauge("jobs.running").set(self.running)
            latency = job.queue_latency_s
            if latency is not None:
                tracer.metrics.histogram("jobs.queue_latency_s").record(latency)
            for tenant, share in self.fairshare.shares().items():
                tracer.metrics.gauge("jobs.tenant_share", tenant=tenant).set(share)
        self._note_depth()
        self.env.process(self._run_job(job, node))

    def _run_job(self, job: Job, node):
        spec = job.spec
        job.start(self.env.now)
        try:
            body = (
                job._body_fn if job._body_fn is not None else resolve_body(spec.body)
            )
            result: JobResult = body(spec)
        except Exception as exc:  # noqa: BLE001 - body failures become state
            self._release(job, node)
            job.fail(self.env.now, f"{type(exc).__name__}: {exc}")
            self._job_terminal(job)
            self._kick()
            return
        yield from node.compute(result.duration_s, cores=spec.cpus)
        self._release(job, node)
        job.complete(self.env.now, result)
        self._job_terminal(job)
        self._kick()

    def _release(self, job: Job, node) -> None:
        """Refund every reservation an admitted job holds."""
        self._cpus_held[node.name] -= job.spec.cpus
        node.free_ram(job.spec.ram_bytes)
        self.fairshare.release(job)
        self.scheduler.release(node.name)
        self.running -= 1

    def _job_terminal(self, job: Job) -> None:
        """Emit terminal-state telemetry (reservations already refunded)."""
        tracer = self.env.tracer
        if tracer.enabled:
            tracer.metrics.counter(
                f"jobs.{job.state}", tenant=job.spec.tenant
            ).inc()
            tracer.metrics.gauge("jobs.running").set(self.running)
            tracer.record_complete(
                job.job_id,
                category="jobs.job",
                node=job.node or "",
                start_s=job.submitted_s,
                end_s=job.finished_s if job.finished_s is not None else self.env.now,
                tenant=job.spec.tenant,
                body=job.spec.body,
                state=job.state,
            )

    def _note_depth(self) -> None:
        depth = self.queue.depth
        if depth > self.peak_queue_depth:
            self.peak_queue_depth = depth
        tracer = self.env.tracer
        if tracer.enabled:
            tracer.metrics.gauge("jobs.queue_depth").set(depth)

    def _note_blocked(self, reason: str, job: Job) -> None:
        self.blocked[reason] += 1
        tracer = self.env.tracer
        if tracer.enabled:
            tracer.metrics.counter(
                "jobs.blocked", reason=reason, tenant=job.spec.tenant
            ).inc()

    # -- driving -----------------------------------------------------------

    def run_pending(self) -> None:
        """Run the simulation until queue and in-flight jobs drain."""
        if self.autoscaler is not None:
            self.autoscaler.ensure_started()
        dispatcher = self.env.process(self._dispatch())
        self.env.run(until=dispatcher)

    def run_job(self, spec: JobSpec, body_fn: Optional[Callable] = None) -> Job:
        """Submit one job and drive it to a terminal state."""
        job = self.submit(spec, body_fn=body_fn)
        if not job.terminal:
            self.run_pending()
        return job

    def _arrival_process(self, arrivals: List[Arrival]):
        for arrival in arrivals:
            delay = arrival.time_s - self.env.now
            if delay > 0:
                yield self.env.timeout(delay)
            self._arrivals_pending -= 1
            try:
                self.submit(arrival.spec)
            except JobQueueFull:
                pass  # open loop: counted (queue.rejected), never retried
        self._kick()

    def simulate(self, arrivals: Optional[List[Arrival]] = None) -> Dict[str, Any]:
        """Drive an open-loop traffic run to completion; return the summary.

        ``arrivals`` defaults to the config's seeded
        :class:`TrafficGenerator` stream.
        """
        if arrivals is None:
            arrivals = TrafficGenerator(self.config).arrivals()
        self._arrivals_pending += len(arrivals)
        self.env.process(self._arrival_process(arrivals))
        self.run_pending()
        return self.summary()

    # -- reporting ---------------------------------------------------------

    def counts(self) -> Dict[str, int]:
        out = {state: 0 for state in ("queued", "admitted", "running",
                                      "completed", "failed", "cancelled")}
        for job in self.queue:
            out[job.state] += 1
        return out

    def summary(self) -> Dict[str, Any]:
        """JSON-friendly outcome of everything the service has run."""
        latencies = [
            job.queue_latency_s
            for job in self.queue
            if job.queue_latency_s is not None
        ]
        counts = self.counts()
        makespan = self.env.now
        per_tenant: Dict[str, Dict[str, Any]] = {}
        for job in self.queue:
            stats = per_tenant.setdefault(
                job.spec.tenant,
                {"submitted": 0, "completed": 0, "latencies": []},
            )
            stats["submitted"] += 1
            if job.state == "completed":
                stats["completed"] += 1
            if job.queue_latency_s is not None:
                stats["latencies"].append(job.queue_latency_s)
        tenants = {
            tenant: {
                "submitted": stats["submitted"],
                "completed": stats["completed"],
                "p50_queue_s": percentile(stats["latencies"], 50),
                "p99_queue_s": percentile(stats["latencies"], 99),
            }
            for tenant, stats in sorted(per_tenant.items())
        }
        out = {
            "jobs": len(self.queue),
            "counts": counts,
            "rejected": self.queue.rejected,
            "blocked": dict(self.blocked),
            "requeued": self.requeued,
            "virtual_makespan_s": makespan,
            "virtual_jobs_per_s": (
                counts["completed"] / makespan if makespan > 0 else 0.0
            ),
            "p50_queue_s": percentile(latencies, 50),
            "p99_queue_s": percentile(latencies, 99),
            "peak_queue_depth": self.peak_queue_depth,
            "tenants": tenants,
            # The cluster's machine-seconds bill — the cost axis of the
            # elasticity experiment (for a static cluster this is just
            # workers x makespan).
            "node_seconds": self.cluster.node_seconds(),
        }
        if self.autoscaler is not None:
            out["elastic"] = self.autoscaler.summary()
        return out

    # -- persistence -------------------------------------------------------

    def snapshot(self) -> Dict[str, Any]:
        """JSON document capturing config, clock and full queue state."""
        return {
            "config": jobs_config_to_json(self.config),
            "now": self.env.now,
            "queue": self.queue.to_json(),
        }

    def save(self, path: Union[str, Path]) -> Path:
        path = Path(path)
        path.write_text(json.dumps(self.snapshot(), indent=2) + "\n")
        return path

    @classmethod
    def resume(
        cls,
        snapshot: Union[Dict[str, Any], str, Path],
        cluster: Optional[Cluster] = None,
    ) -> "JobService":
        """Rebuild a service from a snapshot (dict or file path).

        The virtual clock continues from the snapshot's ``now`` and
        jobs that were in flight are requeued for re-admission —
        deterministically, since fair-share ordering only depends on
        queue contents and the (reset) tenant ledgers.
        """
        if not isinstance(snapshot, dict):
            snapshot = json.loads(Path(snapshot).read_text())
        config = jobs_config_from_json(snapshot["config"])
        if cluster is None:
            cluster = build_cluster(Environment(initial_time=float(snapshot["now"])))
        queue = JobQueue.from_json(snapshot["queue"])
        service = cls(config, cluster=cluster, queue=queue)
        service.requeued = queue.requeue_nonterminal()
        tracer = service.env.tracer
        if service.requeued and tracer.enabled:
            tracer.metrics.counter("jobs.requeued").add(service.requeued)
        return service

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<JobService {len(self.queue)} jobs "
            f"({self.queue.depth} queued, {self.running} running) "
            f"policy={self.fairshare.policy!r}>"
        )
