"""Per-tenant quotas and weighted hierarchical fair-share ordering.

Admission answers two questions per pending job:

* *May this tenant run more right now?* — the quota check
  (:meth:`FairShare.quota_blocked`): hard per-tenant ceilings on
  concurrently running jobs, vCPUs and RAM.
* *Who goes first?* — the ordering (:meth:`FairShare.ordering`):
  ``fifo`` is submission order; ``drf`` sorts pending jobs by their
  tenant's *dominant share* — the larger of the tenant's vCPU and RAM
  fraction of the whole cluster — so the tenant consuming the least
  of its bottleneck resource is served first (Ghodsi et al.'s
  dominant resource fairness, applied to admission ordering).

Tenant names are hierarchical: ``team-a/alice`` charges usage to both
``team-a`` and ``team-a/alice``, and the DRF sort key compares shares
level by level — groups compete first, then users within a group.
Ties break by submission order, so the ordering is deterministic.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.jobs.model import Job

__all__ = ["TenantAccount", "FairShare", "tenant_levels"]


def tenant_levels(tenant: str) -> List[str]:
    """Hierarchy prefixes of a tenant name, outermost first.

    >>> tenant_levels("team-a/alice")
    ['team-a', 'team-a/alice']
    """
    parts = tenant.split("/")
    return ["/".join(parts[: i + 1]) for i in range(len(parts))]


class TenantAccount:
    """Running-resource usage charged to one hierarchy level."""

    __slots__ = ("name", "running", "cpus", "ram_bytes")

    def __init__(self, name: str) -> None:
        self.name = name
        self.running = 0
        self.cpus = 0
        self.ram_bytes = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<TenantAccount {self.name}: {self.running} running, "
            f"{self.cpus} vCPUs, {self.ram_bytes} B>"
        )


class FairShare:
    """Quota enforcement + admission ordering over tenant accounts."""

    def __init__(
        self,
        policy: str = "drf",
        total_cpus: int = 0,
        total_ram_bytes: int = 0,
        quota_running: Optional[int] = None,
        quota_cpus: Optional[int] = None,
        quota_ram_bytes: Optional[int] = None,
    ) -> None:
        if policy not in ("fifo", "drf"):
            raise ValueError(f"policy must be 'fifo' or 'drf', got {policy!r}")
        self.policy = policy
        self.total_cpus = total_cpus
        self.total_ram_bytes = total_ram_bytes
        self.quota_running = quota_running
        self.quota_cpus = quota_cpus
        self.quota_ram_bytes = quota_ram_bytes
        self._accounts: Dict[str, TenantAccount] = {}

    # -- accounts ----------------------------------------------------------

    def account(self, level: str) -> TenantAccount:
        existing = self._accounts.get(level)
        if existing is None:
            existing = self._accounts[level] = TenantAccount(level)
        return existing

    def charge(self, job: Job) -> None:
        """A job started running: charge every hierarchy level."""
        for level in tenant_levels(job.spec.tenant):
            account = self.account(level)
            account.running += 1
            account.cpus += job.spec.cpus
            account.ram_bytes += job.spec.ram_bytes

    def release(self, job: Job) -> None:
        """A running job reached a terminal state: refund the charge."""
        for level in tenant_levels(job.spec.tenant):
            account = self.account(level)
            account.running -= 1
            account.cpus -= job.spec.cpus
            account.ram_bytes -= job.spec.ram_bytes

    # -- quotas ------------------------------------------------------------

    def quota_blocked(self, job: Job) -> Optional[str]:
        """Why the job may not start now, or ``None`` if quotas allow it.

        Quotas apply at every hierarchy level — a group ceiling caps
        the sum of its users.
        """
        for level in tenant_levels(job.spec.tenant):
            account = self._accounts.get(level)
            running = account.running if account else 0
            cpus = account.cpus if account else 0
            ram = account.ram_bytes if account else 0
            if self.quota_running is not None and running >= self.quota_running:
                return f"{level}: running quota ({self.quota_running}) reached"
            if self.quota_cpus is not None and cpus + job.spec.cpus > self.quota_cpus:
                return f"{level}: vCPU quota ({self.quota_cpus}) would be exceeded"
            if (
                self.quota_ram_bytes is not None
                and ram + job.spec.ram_bytes > self.quota_ram_bytes
            ):
                return (
                    f"{level}: RAM quota ({self.quota_ram_bytes} B) would be exceeded"
                )
        return None

    # -- ordering ----------------------------------------------------------

    def dominant_share(self, level: str) -> float:
        """The level's dominant share: max of vCPU and RAM fraction."""
        account = self._accounts.get(level)
        if account is None:
            return 0.0
        cpu_share = (
            account.cpus / self.total_cpus if self.total_cpus > 0 else 0.0
        )
        ram_share = (
            account.ram_bytes / self.total_ram_bytes
            if self.total_ram_bytes > 0
            else 0.0
        )
        return max(cpu_share, ram_share)

    def share_key(self, tenant: str) -> Tuple[float, ...]:
        """Hierarchical DRF sort key: dominant share per level."""
        return tuple(self.dominant_share(level) for level in tenant_levels(tenant))

    def ordering(self, pending: List[Job]) -> List[Job]:
        """Admission order over ``pending`` (which is submission order).

        ``fifo`` keeps submission order; ``drf`` sorts by the
        hierarchical share key, stably — equal shares fall back to
        submission order, keeping the result deterministic.
        """
        if self.policy == "fifo":
            return list(pending)
        return sorted(pending, key=lambda job: self.share_key(job.spec.tenant))

    # -- telemetry ---------------------------------------------------------

    def shares(self) -> Dict[str, float]:
        """Current dominant share per account (leaf and group levels)."""
        return {
            name: self.dominant_share(name) for name in sorted(self._accounts)
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<FairShare policy={self.policy!r} {len(self._accounts)} accounts>"
