"""Job bodies: what a job actually runs.

A *body* is a callable ``body(spec) -> JobResult`` registered under a
name; jobs reference bodies by name so queue snapshots stay plain JSON
(a resumed queue re-resolves names through this registry).

Two synthetic bodies ship built in:

* ``profile`` — occupies the spec's resources for ``duration_s``
  without computing anything; the workhorse of traffic simulations
  and benchmarks.
* ``fail`` — raises :class:`repro.errors.JobBodyError`; exercises the
  ``failed`` leg of the state machine.

Every paper task registers too (``gotta/script``, ``dice/workflow``,
...), at the exact dataset scales pinned by
``tests/obs/test_timing_regression.py`` — so a job running
``dice/script`` measures the same virtual elapsed time as the seed's
direct run, which is what the dormant-invariant test asserts.  Task
bodies execute on their *own* fresh cluster (a job is a whole pipeline
run, like one Texera workflow execution or one notebook submission);
the measured ``elapsed_s`` then becomes the job's occupancy duration
on the shared service cluster.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional

from repro.errors import JobBodyError, UnknownJobBody
from repro.jobs.model import JobSpec

__all__ = [
    "GEN_BODIES",
    "JobResult",
    "register_body",
    "resolve_body",
    "body_catalogue",
]


@dataclass
class JobResult:
    """What a body hands back to the service.

    ``duration_s`` is the virtual time the job occupies its node on
    the *service* cluster; ``run`` carries a :class:`repro.tasks.base.TaskRun`
    for task bodies; ``value`` is an arbitrary payload for ad-hoc
    bodies.
    """

    duration_s: float
    run: Any = None
    value: Any = None


#: name -> body callable.  Insertion order is catalogue order.
_BODIES: Dict[str, Callable[[JobSpec], JobResult]] = {}


def register_body(
    name: str, fn: Optional[Callable[[JobSpec], JobResult]] = None
):
    """Register ``fn`` as the body named ``name`` (also a decorator).

    >>> @register_body("noop")
    ... def noop(spec):
    ...     return JobResult(duration_s=spec.duration_s)
    """
    def install(fn: Callable[[JobSpec], JobResult]):
        _BODIES[name] = fn
        return fn

    if fn is not None:
        return install(fn)
    return install


def resolve_body(name: str) -> Callable[[JobSpec], JobResult]:
    """Look a body up by name; raises :class:`UnknownJobBody`."""
    try:
        return _BODIES[name]
    except KeyError:
        raise UnknownJobBody(
            f"no job body named {name!r}; have {sorted(_BODIES)}"
        ) from None


def body_catalogue() -> List[str]:
    """Registered body names, synthetic bodies first."""
    return list(_BODIES)


# -- built-in synthetic bodies --------------------------------------------


@register_body("profile")
def _profile(spec: JobSpec) -> JobResult:
    """Occupy the spec's resources for its duration; compute nothing."""
    return JobResult(duration_s=spec.duration_s)


@register_body("fail")
def _fail(spec: JobSpec) -> JobResult:
    """Deterministically fail (state-machine and telemetry exercise)."""
    raise JobBodyError(f"body 'fail' failed deliberately (tenant {spec.tenant})")


# -- paper-task bodies ------------------------------------------------------

#: The pinned dataset scales of ``tests/obs/test_timing_regression.py``;
#: running a task body at these scales reproduces SEED_TIMINGS exactly.
_TASK_BODIES = {
    "gotta/script": ("gotta", "script", 1),
    "gotta/workflow": ("gotta", "workflow", 1),
    "dice/script": ("dice", "script", 4),
    "dice/workflow": ("dice", "workflow", 4),
    "kge/script": ("kge", "script", None),
    "kge/workflow": ("kge", "workflow", None),
    "wef/script": ("wef", "script", None),
    "wef/workflow": ("wef", "workflow", None),
}


def _task_dataset(task: str, scale):
    # Imports are local so that importing repro.jobs never drags the
    # whole task/dataset stack in for profile-only traffic runs.
    if task == "gotta":
        from repro.datasets.fsqa import generate_fsqa

        return generate_fsqa(scale)
    if task == "dice":
        from repro.datasets.maccrobat import generate_maccrobat

        return generate_maccrobat(scale)
    if task == "kge":
        from repro.tasks.kge.common import make_kge_dataset

        return make_kge_dataset(300, universe_size=1000)
    from repro.datasets.wildfire import generate_wildfire_tweets

    return generate_wildfire_tweets(40)


def _task_runner(task: str, paradigm: str):
    import importlib

    module = importlib.import_module(f"repro.tasks.{task}.{paradigm}")
    return getattr(module, f"run_{task}_{paradigm}")


def _make_task_body(task: str, paradigm: str, scale):
    def body(spec: JobSpec) -> JobResult:
        from repro.tasks.base import fresh_cluster

        run = _task_runner(task, paradigm)(
            fresh_cluster(), _task_dataset(task, scale)
        )
        return JobResult(duration_s=run.elapsed_s, run=run)

    body.__name__ = f"body_{task}_{paradigm}"
    return body


for _name, (_task, _paradigm, _scale) in _TASK_BODIES.items():
    register_body(_name, _make_task_body(_task, _paradigm, _scale))


# -- generated-family bodies (repro.gen) ------------------------------------

#: The generated task families (:mod:`repro.gen.families`) under both
#: paradigms.  Like the paper-task bodies, each runs on its own fresh
#: cluster and occupies the service cluster for its measured elapsed
#: time.  ``repro.gen`` is imported lazily inside the body, so traffic
#: runs that never draw a gen body never load the generator.
GEN_BODIES = tuple(
    f"gen/{family}/{paradigm}"
    for family in ("stream", "smallsteps", "raster")
    for paradigm in ("workflow", "script")
)


def _make_gen_body(family: str, paradigm: str):
    def body(spec: JobSpec) -> JobResult:
        from repro.gen import run_family

        run = run_family(family, paradigm=paradigm)
        return JobResult(duration_s=run.elapsed_s, value=run)

    body.__name__ = f"body_gen_{family}_{paradigm}"
    return body


for _gen_name in GEN_BODIES:
    _, _gen_family, _gen_paradigm = _gen_name.split("/")
    register_body(_gen_name, _make_gen_body(_gen_family, _gen_paradigm))
