"""repro — reproduction of "Data Science Tasks Implemented with Scripts
versus GUI-Based Workflows: The Good, the Bad, and the Ugly" (ICDE 2024).

Top-level convenience surface; see README.md for the tour:

* the simulated testbed: :func:`repro.cluster.build_cluster`;
* the script paradigm: :func:`repro.rayx.run_script`;
* the workflow paradigm: :class:`repro.workflow.Workflow` +
  :func:`repro.workflow.run_workflow`;
* the paper's tasks: :mod:`repro.tasks`;
* the paper's evaluation: :mod:`repro.experiments`.
"""

from repro.config import ReproConfig, default_config
from repro.errors import ReproError

__version__ = "1.0.0"

__all__ = ["ReproConfig", "default_config", "ReproError", "__version__"]
