"""Clinical text files and offset-preserving sentence splitting.

DICE links each sentence of a case report to the annotations whose
character spans fall inside it, so the splitter must report exact
character offsets into the original text.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

__all__ = ["Sentence", "split_sentences", "TextDocument"]

_TERMINATORS = ".!?"


@dataclass(frozen=True)
class Sentence:
    """One sentence with its character span in the source document."""

    doc_id: str
    index: int
    start: int  # inclusive
    end: int  # exclusive
    text: str

    def contains_span(self, start: int, end: int) -> bool:
        """Whether an annotation span lies entirely inside the sentence."""
        return self.start <= start and end <= self.end


@dataclass
class TextDocument:
    """A clinical case report: id plus raw text."""

    doc_id: str
    text: str

    def sentences(self) -> List[Sentence]:
        return split_sentences(self.doc_id, self.text)


def split_sentences(doc_id: str, text: str) -> List[Sentence]:
    """Split ``text`` into sentences, preserving character offsets.

    A sentence ends at ``.``, ``!`` or ``?`` followed by whitespace (or
    end of text).  Offsets index the *original* string; the sentence
    text is the exact slice, so ``text[s.start:s.end] == s.text`` holds
    (a property test asserts this invariant).
    """
    sentences: List[Sentence] = []
    cursor = 0
    length = len(text)
    index = 0
    while cursor < length:
        # Skip leading whitespace between sentences.
        while cursor < length and text[cursor].isspace():
            cursor += 1
        if cursor >= length:
            break
        start = cursor
        end = cursor
        while end < length:
            char = text[end]
            if char in _TERMINATORS and (end + 1 >= length or text[end + 1].isspace()):
                end += 1  # include the terminator
                break
            end += 1
        sentences.append(Sentence(doc_id, index, start, end, text[start:end]))
        index += 1
        cursor = end
    return sentences
