"""Dataset file formats: BRAT annotations, clinical text, JSONL, CSV."""

from repro.storage.csvio import read_csv, table_from_csv, table_to_csv, write_csv
from repro.storage.brat import (
    AnnotationDocument,
    EntityAnnotation,
    EventAnnotation,
    parse_annotations,
    serialize_annotations,
)
from repro.storage.jsonl import (
    dumps_jsonl,
    iter_jsonl,
    loads_jsonl,
    read_jsonl,
    write_jsonl,
)
from repro.storage.textio import Sentence, TextDocument, split_sentences

__all__ = [
    "read_csv",
    "table_from_csv",
    "table_to_csv",
    "write_csv",
    "AnnotationDocument",
    "EntityAnnotation",
    "EventAnnotation",
    "parse_annotations",
    "serialize_annotations",
    "dumps_jsonl",
    "iter_jsonl",
    "loads_jsonl",
    "read_jsonl",
    "write_jsonl",
    "Sentence",
    "TextDocument",
    "split_sentences",
]
