"""BRAT-style standoff annotation format (the MACCROBAT layout).

Figure 3 of the paper shows the annotation files paired with clinical
text files: entity annotations ``T<i>`` ("text-bound") carry a type,
character offsets into the text file, and the covered text; event
annotations ``E<i>`` reference a trigger entity and optional arguments.

File grammar (tab-separated, one annotation per line)::

    T1\tAge 18 27\t34-yr-old
    T3\tClinical_event 36 45\tpresented
    E1\tClinical_event:T3
    E2\tSign_symptom:T4 Modifier:T5

This module parses and serializes that format; the DICE task consumes
the parsed objects.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.errors import AnnotationParseError

__all__ = [
    "EntityAnnotation",
    "EventAnnotation",
    "AnnotationDocument",
    "parse_annotations",
    "serialize_annotations",
]


@dataclass(frozen=True)
class EntityAnnotation:
    """A text-bound annotation (``T`` line)."""

    key: str  # e.g. "T1"
    ann_type: str  # e.g. "Age", "Sign_symptom"
    start: int  # character offset, inclusive
    end: int  # character offset, exclusive
    text: str  # covered text

    def __post_init__(self) -> None:
        if not self.key.startswith("T"):
            raise AnnotationParseError(f"entity key must start with T: {self.key!r}")
        if self.start < 0 or self.end < self.start:
            raise AnnotationParseError(
                f"invalid span [{self.start}, {self.end}) for {self.key}"
            )

    def to_line(self) -> str:
        return f"{self.key}\t{self.ann_type} {self.start} {self.end}\t{self.text}"


@dataclass(frozen=True)
class EventAnnotation:
    """An event annotation (``E`` line): trigger plus role arguments."""

    key: str  # e.g. "E1"
    trigger_type: str  # e.g. "Clinical_event"
    trigger_ref: str  # entity key, e.g. "T3"
    arguments: Tuple[Tuple[str, str], ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        if not self.key.startswith("E"):
            raise AnnotationParseError(f"event key must start with E: {self.key!r}")
        if not self.trigger_ref.startswith("T"):
            raise AnnotationParseError(
                f"event {self.key} trigger must reference a T key, "
                f"got {self.trigger_ref!r}"
            )

    def to_line(self) -> str:
        parts = [f"{self.trigger_type}:{self.trigger_ref}"]
        parts.extend(f"{role}:{ref}" for role, ref in self.arguments)
        return f"{self.key}\t{' '.join(parts)}"


@dataclass
class AnnotationDocument:
    """All annotations of one MACCROBAT case report."""

    doc_id: str
    entities: List[EntityAnnotation]
    events: List[EventAnnotation]

    def entity_index(self) -> Dict[str, EntityAnnotation]:
        """Entities keyed by their T key."""
        return {entity.key: entity for entity in self.entities}

    def validate_references(self) -> None:
        """Every event trigger/argument must reference a known entity."""
        known = {entity.key for entity in self.entities}
        for event in self.events:
            if event.trigger_ref not in known:
                raise AnnotationParseError(
                    f"doc {self.doc_id}: event {event.key} references "
                    f"unknown entity {event.trigger_ref}"
                )
            for role, ref in event.arguments:
                if ref not in known:
                    raise AnnotationParseError(
                        f"doc {self.doc_id}: event {event.key} argument "
                        f"{role} references unknown entity {ref}"
                    )


def _parse_entity_line(line: str) -> EntityAnnotation:
    try:
        key, middle, text = line.split("\t", 2)
        ann_type, start, end = middle.rsplit(" ", 2)
        return EntityAnnotation(key, ann_type, int(start), int(end), text)
    except (ValueError, AnnotationParseError) as exc:
        raise AnnotationParseError(f"bad entity line {line!r}: {exc}") from exc


def _parse_event_line(line: str) -> EventAnnotation:
    try:
        key, body = line.split("\t", 1)
        parts = body.split()
        trigger_type, trigger_ref = parts[0].split(":", 1)
        arguments = tuple(
            tuple(part.split(":", 1)) for part in parts[1:]  # type: ignore[misc]
        )
        return EventAnnotation(key, trigger_type, trigger_ref, arguments)
    except (ValueError, IndexError, AnnotationParseError) as exc:
        raise AnnotationParseError(f"bad event line {line!r}: {exc}") from exc


def parse_annotations(doc_id: str, content: str) -> AnnotationDocument:
    """Parse a ``.ann`` file's content into an :class:`AnnotationDocument`.

    Unknown annotation kinds (``R``, ``A``, ``#`` comments, ...) are
    skipped, as DICE only consumes entities and events.
    """
    entities: List[EntityAnnotation] = []
    events: List[EventAnnotation] = []
    for raw_line in content.splitlines():
        line = raw_line.rstrip("\n")
        if not line.strip() or line.startswith("#"):
            continue
        if line.startswith("T"):
            entities.append(_parse_entity_line(line))
        elif line.startswith("E"):
            events.append(_parse_event_line(line))
        # silently skip other standoff kinds (relations, attributes)
    return AnnotationDocument(doc_id, entities, events)


def serialize_annotations(document: AnnotationDocument) -> str:
    """Serialize a document back to ``.ann`` text (roundtrip-safe)."""
    lines = [entity.to_line() for entity in document.entities]
    lines.extend(event.to_line() for event in document.events)
    return "\n".join(lines) + ("\n" if lines else "")
