"""JSONL (newline-delimited JSON) reading and writing.

The paper's Figure 9 shows a Texera workflow whose source operator is
"JSONL Processing"; the dataset generators in this repository persist
their synthetic corpora in the same format so workflows and scripts can
scan identical inputs.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, Iterable, Iterator, List, Union

from repro.errors import StorageError

__all__ = ["dumps_jsonl", "loads_jsonl", "write_jsonl", "read_jsonl", "iter_jsonl"]

PathLike = Union[str, Path]


def dumps_jsonl(records: Iterable[Dict[str, Any]]) -> str:
    """Serialize records to JSONL text (sorted keys: deterministic)."""
    return "".join(json.dumps(record, sort_keys=True) + "\n" for record in records)


def loads_jsonl(content: str) -> List[Dict[str, Any]]:
    """Parse JSONL text into a list of dict records."""
    records: List[Dict[str, Any]] = []
    for line_number, line in enumerate(content.splitlines(), start=1):
        if not line.strip():
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError as exc:
            raise StorageError(f"invalid JSON on line {line_number}: {exc}") from exc
        if not isinstance(record, dict):
            raise StorageError(
                f"line {line_number} is not a JSON object: {record!r}"
            )
        records.append(record)
    return records


def write_jsonl(path: PathLike, records: Iterable[Dict[str, Any]]) -> int:
    """Write records to ``path``; returns the number written."""
    records = list(records)
    Path(path).write_text(dumps_jsonl(records), encoding="utf-8")
    return len(records)


def read_jsonl(path: PathLike) -> List[Dict[str, Any]]:
    """Read all records from a JSONL file."""
    return loads_jsonl(Path(path).read_text(encoding="utf-8"))


def iter_jsonl(path: PathLike) -> Iterator[Dict[str, Any]]:
    """Stream records from a JSONL file one at a time."""
    with open(path, "r", encoding="utf-8") as handle:
        for line_number, line in enumerate(handle, start=1):
            if not line.strip():
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as exc:
                raise StorageError(
                    f"{path}: invalid JSON on line {line_number}: {exc}"
                ) from exc
            if not isinstance(record, dict):
                raise StorageError(
                    f"{path}: line {line_number} is not a JSON object"
                )
            yield record
