"""CSV reading/writing for relational tables.

A minimal, dependency-free CSV layer (stdlib ``csv``) so tables can be
exchanged with spreadsheet-paradigm tools — the third paradigm the
paper's introduction mentions alongside scripts and workflows.  Typed
round-trips: values are serialized per the schema's field types and
parsed back accordingly.
"""

from __future__ import annotations

import csv
import io
from pathlib import Path
from typing import Any, List, Union

from repro.errors import StorageError
from repro.relational import FieldType, Schema, Table

__all__ = ["table_to_csv", "table_from_csv", "write_csv", "read_csv"]

PathLike = Union[str, Path]

_NULL = ""


def _serialize(value: Any) -> str:
    if value is None:
        return _NULL
    if isinstance(value, bool):
        return "true" if value else "false"
    return str(value)


def _parse(text: str, ftype: FieldType) -> Any:
    if text == _NULL:
        return None
    try:
        if ftype is FieldType.INT:
            return int(text)
        if ftype is FieldType.FLOAT:
            return float(text)
        if ftype is FieldType.BOOL:
            if text not in ("true", "false"):
                raise ValueError(f"not a bool: {text!r}")
            return text == "true"
        return text  # STRING and ANY stay textual
    except ValueError as exc:
        raise StorageError(f"cannot parse {text!r} as {ftype.value}") from exc


def table_to_csv(table: Table) -> str:
    """Serialize a table to CSV text (header row = field names)."""
    buffer = io.StringIO()
    writer = csv.writer(buffer, lineterminator="\n")
    writer.writerow(table.schema.names)
    for row in table:
        writer.writerow([_serialize(value) for value in row.values])
    return buffer.getvalue()


def table_from_csv(content: str, schema: Schema) -> Table:
    """Parse CSV text into a table of ``schema``.

    The header must name exactly the schema's fields (any order);
    columns are reordered to the schema.
    """
    reader = csv.reader(io.StringIO(content))
    try:
        header = next(reader)
    except StopIteration:
        raise StorageError("empty CSV: missing header row") from None
    missing = [name for name in schema.names if name not in header]
    extra = [name for name in header if name not in schema]
    if missing or extra:
        raise StorageError(
            f"CSV header mismatch: missing {missing}, unexpected {extra}"
        )
    positions = [header.index(name) for name in schema.names]
    rows: List[List[Any]] = []
    for line_number, record in enumerate(reader, start=2):
        if not record:
            continue
        if len(record) != len(header):
            raise StorageError(
                f"line {line_number}: expected {len(header)} fields, "
                f"got {len(record)}"
            )
        rows.append(
            [
                _parse(record[position], field.ftype)
                for position, field in zip(positions, schema.fields)
            ]
        )
    return Table.from_rows(schema, rows)


def write_csv(path: PathLike, table: Table) -> int:
    """Write a table to ``path``; returns the number of data rows."""
    Path(path).write_text(table_to_csv(table), encoding="utf-8")
    return len(table)


def read_csv(path: PathLike, schema: Schema) -> Table:
    """Read a table of ``schema`` from ``path``."""
    return table_from_csv(Path(path).read_text(encoding="utf-8"), schema)
