"""The workflow DAG: operators, links, validation, schema propagation.

Mirrors what the Texera GUI enforces at editing time: operators expose
typed ports, links connect exactly one producer output to one consumer
input, the graph must be acyclic, and schemas propagate edge-by-edge so
configuration errors surface before execution (paper Section III-A:
"operators with explicit connections that indicate data flow").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.errors import InvalidWorkflow, SchemaError
from repro.relational import Schema
from repro.workflow.operator import LogicalOperator

__all__ = ["Link", "Workflow"]


def _port_range(count: int, side: str) -> str:
    if count == 0:
        return f"operator has no {side} ports"
    return f"valid {side} ports: 0..{count - 1}"


@dataclass(frozen=True)
class Link:
    """A directed edge between two operator ports."""

    producer_id: str
    output_port: int
    consumer_id: str
    input_port: int

    def __repr__(self) -> str:
        return (
            f"{self.producer_id}[{self.output_port}] -> "
            f"{self.consumer_id}[{self.input_port}]"
        )


class Workflow:
    """A user-assembled DAG of logical operators."""

    def __init__(self, name: str = "workflow") -> None:
        self.name = name
        self.operators: Dict[str, LogicalOperator] = {}
        self.links: List[Link] = []
        #: Co-location hints (operator_id -> group label), filled by
        #: the logical optimizer; the engine forwards them to
        #: ``repro.sched`` as ``colocate_key``s.  Empty on hand-built
        #: workflows, so placement stays seed-identical by default.
        self.placement_hints: Dict[str, str] = {}

    # -- construction ---------------------------------------------------------

    def add_operator(self, operator: LogicalOperator) -> LogicalOperator:
        """Add an operator; ids must be unique within the workflow."""
        if operator.operator_id in self.operators:
            raise InvalidWorkflow(
                f"duplicate operator id {operator.operator_id!r}"
            )
        self.operators[operator.operator_id] = operator
        return operator

    def link(
        self,
        producer: LogicalOperator,
        consumer: LogicalOperator,
        output_port: int = 0,
        input_port: int = 0,
    ) -> Link:
        """Connect ``producer[output_port]`` to ``consumer[input_port]``."""
        attempted = Link(
            producer.operator_id, output_port, consumer.operator_id, input_port
        )
        self._require_operator(producer.operator_id, attempted)
        self._require_operator(consumer.operator_id, attempted)
        if not 0 <= output_port < producer.num_output_ports:
            raise InvalidWorkflow(
                f"dangling link {attempted!r}: operator "
                f"{producer.operator_id!r} has no output port {output_port} "
                f"({_port_range(producer.num_output_ports, 'output')})"
            )
        if not 0 <= input_port < consumer.num_input_ports:
            raise InvalidWorkflow(
                f"dangling link {attempted!r}: operator "
                f"{consumer.operator_id!r} has no input port {input_port} "
                f"({_port_range(consumer.num_input_ports, 'input')})"
            )
        for existing in self.links:
            if (
                existing.consumer_id == consumer.operator_id
                and existing.input_port == input_port
            ):
                raise InvalidWorkflow(
                    f"duplicate link into input port {input_port} of operator "
                    f"{consumer.operator_id!r}: {attempted!r} conflicts with "
                    f"existing {existing!r}"
                )
        self.links.append(attempted)
        return attempted

    def _require_operator(
        self, operator_id: str, attempted: Optional[Link] = None
    ) -> LogicalOperator:
        try:
            return self.operators[operator_id]
        except KeyError:
            context = f" (while adding link {attempted!r})" if attempted else ""
            raise InvalidWorkflow(
                f"dangling link: operator {operator_id!r} was not added to "
                f"the workflow{context}"
            ) from None

    # -- queries ------------------------------------------------------------------

    def in_links(self, operator_id: str) -> List[Link]:
        """Incoming links of one operator, ordered by input port."""
        links = [l for l in self.links if l.consumer_id == operator_id]
        return sorted(links, key=lambda l: l.input_port)

    def out_links(self, operator_id: str) -> List[Link]:
        """Outgoing links of one operator, ordered by output port."""
        links = [l for l in self.links if l.producer_id == operator_id]
        return sorted(links, key=lambda l: l.output_port)

    def sources(self) -> List[LogicalOperator]:
        return [op for op in self.operators.values() if op.is_source]

    def sinks(self) -> List[LogicalOperator]:
        return [op for op in self.operators.values() if op.is_sink]

    @property
    def num_operators(self) -> int:
        """The paper's "number of operators" metric (Section IV-B)."""
        return len(self.operators)

    # -- validation & compilation ------------------------------------------------------

    def topological_order(self) -> List[LogicalOperator]:
        """Operators in dependency order; raises on cycles (Kahn)."""
        indegree = {op_id: 0 for op_id in self.operators}
        for link in self.links:
            indegree[link.consumer_id] += 1
        ready = sorted(op_id for op_id, deg in indegree.items() if deg == 0)
        order: List[LogicalOperator] = []
        while ready:
            op_id = ready.pop(0)
            order.append(self.operators[op_id])
            for link in self.out_links(op_id):
                indegree[link.consumer_id] -= 1
                if indegree[link.consumer_id] == 0:
                    ready.append(link.consumer_id)
            ready.sort()
        if len(order) != len(self.operators):
            stuck = sorted(op_id for op_id, deg in indegree.items() if deg > 0)
            edges = [
                repr(link)
                for link in self.links
                if link.producer_id in stuck and link.consumer_id in stuck
            ]
            raise InvalidWorkflow(
                f"workflow contains a cycle involving operators {stuck} "
                f"(links on the cycle: {edges})"
            )
        return order

    def validate(self) -> None:
        """Full structural validation (GUI-time checks)."""
        if not self.operators:
            raise InvalidWorkflow("workflow has no operators")
        if not self.sinks():
            raise InvalidWorkflow("workflow has no sink operator")
        for operator in self.operators.values():
            connected = {l.input_port for l in self.in_links(operator.operator_id)}
            expected = set(range(operator.num_input_ports))
            missing = expected - connected
            if missing:
                raise InvalidWorkflow(
                    f"operator {operator.operator_id!r} input ports "
                    f"{sorted(missing)} are unconnected"
                )
        self.topological_order()  # raises on cycles

    def compile_schemas(self) -> Dict[str, Schema]:
        """Propagate schemas through the DAG; returns output schemas.

        Must be called (directly or via the engine) before executors
        are created — stateful operators capture their input schemas
        here.
        """
        self.validate()
        output_schemas: Dict[str, Schema] = {}
        for operator in self.topological_order():
            in_links = self.in_links(operator.operator_id)
            input_schemas = [output_schemas[l.producer_id] for l in in_links]
            try:
                output_schemas[operator.operator_id] = operator.output_schema(
                    input_schemas
                )
            except InvalidWorkflow:
                raise  # already scoped to the operator by the raiser
            except SchemaError as exc:
                ports = ", ".join(
                    f"port {l.input_port} (from {l.producer_id!r})"
                    for l in in_links
                ) or "no input ports"
                raise InvalidWorkflow(
                    f"operator {operator.operator_id!r}: schema mismatch on "
                    f"{ports}: {exc}"
                ) from exc
        return output_schemas

    def __repr__(self) -> str:
        return (
            f"<Workflow {self.name!r}: {len(self.operators)} operators, "
            f"{len(self.links)} links>"
        )
