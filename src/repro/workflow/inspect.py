"""Workflow inspection: the GUI's view of a DAG, as data and text.

The paper's Section III-A contrasts how each paradigm *presents* a
task: the workflow GUI shows a high-level graph of operators with
optional per-operator detail.  This module provides that view
programmatically:

* :func:`workflow_to_spec` — a JSON-able description of the DAG
  (operator types, languages, workers, ports, links), the exchange
  format a GUI canvas would load;
* :func:`render_dag` — an ASCII rendering in topological order, with
  each operator's fan-in/fan-out shown;
* :func:`describe_operator` — one operator's property panel.
"""

from __future__ import annotations

from typing import Any, Dict, List

from repro.workflow.dag import Workflow
from repro.workflow.operator import LogicalOperator

__all__ = ["workflow_to_spec", "render_dag", "describe_operator"]


def describe_operator(operator: LogicalOperator) -> Dict[str, Any]:
    """The operator's property panel, as a plain dict."""
    panel: Dict[str, Any] = {
        "id": operator.operator_id,
        "type": type(operator).__name__,
        "language": operator.language.value,
        "workers": operator.num_workers,
        "input_ports": operator.num_input_ports,
        "output_ports": operator.num_output_ports,
        "blocking": operator.is_blocking,
    }
    if operator.framework_cores is not None:
        panel["framework_cores"] = operator.framework_cores
    if operator.output_batch_size is not None:
        panel["output_batch_size"] = operator.output_batch_size
    predicate = getattr(operator, "predicate", None)
    if predicate is not None and hasattr(predicate, "describe"):
        panel["predicate"] = predicate.describe()
    columns = getattr(operator, "columns", None)
    if columns is not None:
        panel["columns"] = list(columns)
    return panel


def workflow_to_spec(workflow: Workflow) -> Dict[str, Any]:
    """A JSON-able spec of the whole DAG (canvas exchange format)."""
    return {
        "name": workflow.name,
        "operators": [
            describe_operator(operator)
            for operator in workflow.topological_order()
        ],
        "links": [
            {
                "from": link.producer_id,
                "from_port": link.output_port,
                "to": link.consumer_id,
                "to_port": link.input_port,
            }
            for link in workflow.links
        ],
    }


def render_dag(workflow: Workflow) -> str:
    """ASCII rendering of the DAG in topological order.

    Each line shows one operator with its configuration summary and
    outgoing edges — the closest a terminal gets to the GUI canvas.
    """
    lines: List[str] = [f"workflow {workflow.name!r}"]
    for operator in workflow.topological_order():
        badge = []
        if operator.language.value != "python":
            badge.append(operator.language.value)
        if operator.num_workers > 1:
            badge.append(f"x{operator.num_workers}")
        if operator.is_blocking:
            badge.append("blocking")
        suffix = f" [{', '.join(badge)}]" if badge else ""
        lines.append(f"  ({operator.operator_id}){suffix}")
        for link in workflow.out_links(operator.operator_id):
            port = f":{link.input_port}" if link.input_port else ""
            lines.append(f"    └─> ({link.consumer_id}{port})")
    return "\n".join(lines)
