"""Pipelined push-based execution of workflow DAGs on the cluster.

This is the Texera-substitute's engine room.  Each logical operator
fans out into ``num_workers`` physical instances; every instance is one
simulation process on a cluster node.  Tuples move between instances in
*batches* over channels; every batch pays

* encode time on the producer's node (codec chosen by the producer→
  consumer language pair — the paper's cross-language overhead),
* network transfer time when producer and consumer sit on different
  nodes,
* decode time on the consumer's node.

Because instances run concurrently and exchange batches as they are
produced, downstream operators start before upstream operators finish —
the *pipelining* the paper credits for the workflow paradigm's DICE and
GOTTA results (Sections III-D and IV-E).

Blocking operators (sort, group-by, training) only emit at end-of-input
and are therefore pipeline breakers, exactly as in a real engine.
"""

from __future__ import annotations

import copy
from typing import Any, Dict, Generator, List, Optional, Sequence

from repro.cache.fingerprint import combine, fingerprint_value
from repro.cluster import CONTROLLER, Cluster, Codec, Node
from repro.cluster.serialization import record_codec
from repro.config import ReproConfig
from repro.errors import OperatorError
from repro.relational import Table, Tuple
from repro.sched import PlacementRequest, Scheduler
from repro.sim import Store
from repro.workflow.dag import Link, Workflow
from repro.workflow.operator import LogicalOperator, OperatorExecutor, SourceExecutor
from repro.workflow.operators.sink import _SinkExecutor, _VisualizationExecutor
from repro.workflow.partitioning import (
    BroadcastPartitioner,
    HashPartitioner,
    Partitioner,
    RoundRobinPartitioner,
)
from repro.workflow.progress import OperatorState, ProgressTracker

__all__ = ["WorkflowResult", "WorkflowController", "run_workflow"]


class _Batch:
    """A serialized bundle of tuples in flight on a channel.

    ``source`` names the producing instance (``operator_id#worker``) so
    the consumer's cache keys can roll one prefix per upstream stream —
    each producer's sequence is deterministic even when fan-in arrival
    order is not.
    """

    __slots__ = ("tuples", "nbytes", "source")

    def __init__(self, tuples: Sequence[Tuple], source: str = "") -> None:
        self.tuples = list(tuples)
        # Identical to estimate_bytes([t.values for t in tuples]) —
        # 16 bytes list overhead plus (8 + payload) per entry — but
        # reuses each tuple's cached size instead of re-walking values.
        self.nbytes = 16 + sum(8 + t.payload_bytes() for t in self.tuples)
        self.source = source


class _Eos:
    """End-of-stream marker, one per producer instance per channel."""

    __slots__ = ()


_EOS = _Eos()


def _operator_fingerprint(operator: LogicalOperator) -> str:
    """Structural fingerprint of a logical operator (``repro.cache``).

    Keyed by class plus attribute values (predicates and UDFs hash by
    code, not identity), so rebuilding the same workflow for a repeat
    run maps onto the same cache entries.
    """
    parts: List[Any] = ["wfop", type(operator).__module__, type(operator).__qualname__]
    state = vars(operator)
    for key in sorted(state):
        parts.append(key)
        parts.append(fingerprint_value(state[key]))
    return combine(*parts)


class _InboundPort:
    """One instance's receive side for one input port."""

    def __init__(self, store: Store, expected_eos: int, codec: Codec) -> None:
        self.store = store
        self.expected_eos = expected_eos
        self.codec = codec


class _Outbound:
    """One producer instance's send side for one outgoing link."""

    def __init__(
        self,
        link: Link,
        partitioner: Partitioner,
        consumer_ports: Sequence[_InboundPort],
        consumer_nodes: Sequence[Node],
        codec: Codec,
        batch_size: int,
        auto_tune: Optional["_AutoBatchTuner"] = None,
    ) -> None:
        self.link = link
        self.partitioner = partitioner
        self.consumer_ports = list(consumer_ports)
        self.consumer_nodes = list(consumer_nodes)
        self.codec = codec
        self.batch_size = batch_size
        self.auto_tune = auto_tune
        self._buffers: List[List[Tuple]] = [[] for _ in consumer_ports]

    def observe_batch(self, batch: "_Batch") -> None:
        """Feed the auto-tuner; adjusts this channel's batch size."""
        if self.auto_tune is not None and batch.tuples:
            self.batch_size = self.auto_tune.tuned_size(
                batch.nbytes / len(batch.tuples)
            )

    def append(self, row: Tuple) -> List[int]:
        """Buffer a tuple; return consumer indices whose buffer is full."""
        full: List[int] = []
        for index in self.partitioner.route(row):
            buffer = self._buffers[index]
            buffer.append(row)
            if len(buffer) >= self.batch_size:
                full.append(index)
        return full

    def take_buffer(self, index: int) -> List[Tuple]:
        buffer, self._buffers[index] = self._buffers[index], []
        return buffer

    def pending_indices(self) -> List[int]:
        return [i for i, buffer in enumerate(self._buffers) if buffer]


class _AutoBatchTuner:
    """Runtime batch-size tuning from observed tuple payloads.

    The paper credits Texera with tuning batching automatically
    (Section III-B); this tuner targets a fixed number of bytes per
    batch using an exponential moving average of tuple sizes, clamped
    to the configured range.
    """

    def __init__(self, target_bytes: int, min_size: int, max_size: int) -> None:
        self.target_bytes = target_bytes
        self.min_size = min_size
        self.max_size = max_size
        self._avg_tuple_bytes: Optional[float] = None

    def tuned_size(self, observed_tuple_bytes: float) -> int:
        if self._avg_tuple_bytes is None:
            self._avg_tuple_bytes = observed_tuple_bytes
        else:
            self._avg_tuple_bytes = (
                0.7 * self._avg_tuple_bytes + 0.3 * observed_tuple_bytes
            )
        size = int(self.target_bytes / max(self._avg_tuple_bytes, 1.0))
        return max(self.min_size, min(self.max_size, size))


class _Instance:
    """One physical worker instance of a logical operator."""

    def __init__(
        self,
        operator: LogicalOperator,
        worker_index: int,
        node: Node,
        executor: OperatorExecutor,
    ) -> None:
        self.operator = operator
        self.worker_index = worker_index
        self.node = node
        self.executor = executor
        self.inbound: Dict[int, _InboundPort] = {}
        self.outbound: List[_Outbound] = []
        #: Virtual CPU-seconds this instance charged (compute + codec).
        self.busy_s = 0.0
        #: Epoch counter under fault injection: one epoch per
        #: checkpointed input batch (the engine's recovery granularity).
        self.epoch = 0
        #: Restarts this instance performed (injected operator faults).
        self.restarts = 0
        #: ``repro.cache``: this instance's lineage chain root (None
        #: while the cache is dormant) and the rolling prefix key per
        #: input stream — each consumed batch folds its content hash
        #: into the stream's key, so a key identifies the *entire
        #: history* up to that batch (executor state included).
        self.cache_chain: Optional[str] = None
        self.cache_keys: Dict[str, str] = {}

    @property
    def operator_id(self) -> str:
        return self.operator.operator_id

    def __repr__(self) -> str:
        return f"<Instance {self.operator_id}[{self.worker_index}] on {self.node.name}>"


class WorkflowResult:
    """Outcome of one workflow execution."""

    def __init__(
        self,
        workflow: Workflow,
        results: Dict[str, Table],
        charts: Dict[str, Dict[str, Any]],
        progress: ProgressTracker,
        elapsed_s: float,
        num_worker_instances: int,
        operator_stats: Optional[Dict[str, Dict[str, Any]]] = None,
    ) -> None:
        self.workflow = workflow
        self.results = results
        self.charts = charts
        self.progress = progress
        self.elapsed_s = elapsed_s
        self.num_worker_instances = num_worker_instances
        #: Per-operator runtime accounting: instances, virtual CPU-seconds
        #: charged, and the nodes the instances ran on.
        self.operator_stats = operator_stats or {}

    def table(self, sink_id: Optional[str] = None) -> Table:
        """The collected table of one sink (or the only sink)."""
        if sink_id is None:
            if len(self.results) != 1:
                raise OperatorError(
                    "result", f"expected one sink, have {sorted(self.results)}"
                )
            return next(iter(self.results.values()))
        return self.results[sink_id]

    def __repr__(self) -> str:
        return (
            f"<WorkflowResult {self.workflow.name!r}: {sorted(self.results)} "
            f"in {self.elapsed_s:.2f}s>"
        )


class WorkflowController:
    """Deploys a workflow onto the cluster and drives it to completion."""

    def __init__(
        self,
        cluster: Cluster,
        workflow: Workflow,
        config: Optional[ReproConfig] = None,
    ) -> None:
        self.cluster = cluster
        self.workflow = workflow
        self.config = config or cluster.config
        self.env = cluster.env
        self.tracer = cluster.tracer
        #: Span covering the whole execution; instance spans nest under it.
        self._exec_span = None
        #: Instance spans still live, closed as "aborted" if a sibling
        #: operator's failure tears the execution down around them.
        self._instance_spans: List[Any] = []
        self.progress = ProgressTracker()
        self._instances: Dict[str, List[_Instance]] = {}
        #: Placement layer (``repro.sched``): operator-instance layout
        #: goes through this scheduler, one per controller session.
        self.scheduler = Scheduler(cluster, config=self.config)
        #: Pause gate: None while running; an un-triggered event while
        #: paused (instances wait on it before touching the next batch).
        self._pause_gate = None

    # -- pause / resume (the GUI's pause button, paper Section III-A) ----------

    @property
    def is_paused(self) -> bool:
        return self._pause_gate is not None

    def pause(self) -> None:
        """Pause the execution at batch granularity.

        Instances finish the batch they are on, then block; running
        operators show the PAUSED state on the progress board.
        Idempotent.
        """
        if self._pause_gate is not None:
            return
        self._pause_gate = self.env.event()
        for op_id in self._instances:
            progress = self.progress.of(op_id)
            if progress.state is OperatorState.RUNNING:
                progress.transition(OperatorState.PAUSED)

    def resume(self) -> None:
        """Release a previous :meth:`pause`.  Idempotent."""
        if self._pause_gate is None:
            return
        for op_id in self._instances:
            progress = self.progress.of(op_id)
            if progress.state is OperatorState.PAUSED:
                progress.transition(OperatorState.RUNNING)
        gate, self._pause_gate = self._pause_gate, None
        gate.succeed()

    def _pause_point(self) -> Generator:
        """Instances yield here between batches; blocks while paused."""
        while self._pause_gate is not None:
            yield self._pause_gate

    # -- compilation -------------------------------------------------------------

    def _place(self, operator: LogicalOperator, worker_index: int) -> Node:
        return self.scheduler.place(
            PlacementRequest(
                kind="operator",
                label=f"{operator.operator_id}[{worker_index}]",
                operator_id=operator.operator_id,
                worker_index=worker_index,
                num_workers=operator.num_workers,
                colocate_key=self.workflow.placement_hints.get(
                    operator.operator_id
                ),
            )
        )

    def _build_plan(self) -> None:
        """Create instances, inbound ports and outbound channels."""
        wf_config = self.config.workflow
        order = self.workflow.topological_order()
        # 1. instances + progress registration
        cache = self.cluster.cache
        for operator in order:
            self.progress.register(operator.operator_id, operator.num_workers)
            op_fp = _operator_fingerprint(operator) if cache.active else None
            instances = []
            for index in range(operator.num_workers):
                instance = _Instance(
                    operator,
                    index,
                    self._place(operator, index),
                    operator.create_executor(index),
                )
                if op_fp is not None:
                    instance.cache_chain = combine(
                        "wf",
                        cache.config.epoch,
                        self.workflow.name or "",
                        op_fp,
                        index,
                        operator.num_workers,
                    )
                instances.append(instance)
            self._instances[operator.operator_id] = instances
        # 2. channels per link
        for link in self.workflow.links:
            producer_op = self.workflow.operators[link.producer_id]
            consumer_op = self.workflow.operators[link.consumer_id]
            consumers = self._instances[link.consumer_id]
            codec = self.cluster.codecs.for_boundary(
                producer_op.language.value, consumer_op.language.value
            )
            # Bounded channels give back-pressure; later ports of
            # in-order consumers stay unbounded to avoid diamond
            # deadlocks (the consumer will not drain them until the
            # earlier ports finish).
            bounded = not (consumer_op.consumes_ports_in_order and link.input_port > 0)
            capacity = wf_config.channel_capacity_batches if bounded else None
            ports: List[_InboundPort] = []
            for consumer in consumers:
                if link.input_port in consumer.inbound:
                    port = consumer.inbound[link.input_port]
                else:
                    port = _InboundPort(
                        Store(self.env, capacity),
                        expected_eos=producer_op.num_workers,
                        codec=codec,
                    )
                    consumer.inbound[link.input_port] = port
                ports.append(port)
            strategy = consumer_op.partition_strategy(link.input_port)
            key = consumer_op.partition_key(link.input_port)
            for producer in self._instances[link.producer_id]:
                if len(consumers) == 1:
                    partitioner: Partitioner = RoundRobinPartitioner(1)
                elif strategy == "broadcast":
                    partitioner = BroadcastPartitioner(len(consumers))
                elif strategy == "hash" and key is not None:
                    partitioner = HashPartitioner(len(consumers), key)
                else:
                    partitioner = RoundRobinPartitioner(len(consumers))
                tuner = None
                if (
                    wf_config.auto_tune_batch_size
                    and producer_op.output_batch_size is None
                ):
                    tuner = _AutoBatchTuner(
                        wf_config.auto_batch_target_bytes,
                        wf_config.min_batch_size,
                        wf_config.max_batch_size,
                    )
                producer.outbound.append(
                    _Outbound(
                        link,
                        partitioner,
                        ports,
                        [c.node for c in consumers],
                        codec,
                        producer_op.output_batch_size
                        or wf_config.default_batch_size,
                        auto_tune=tuner,
                    )
                )

    # -- execution ---------------------------------------------------------------

    def execute(self) -> Generator:
        """Simulation process: run the workflow, return a result."""
        start = self.env.now
        tracer = self.tracer
        if tracer.enabled:
            self._exec_span = tracer.start(
                self.workflow.name or "workflow",
                category="workflow.controller",
                node=CONTROLLER,
            )
        try:
            if self.config.workflow.optimize:
                from repro.workflow.optimize import optimize_workflow

                self.workflow = optimize_workflow(self.workflow)
            self.workflow.compile_schemas()  # validates + captures schemas
            self._build_plan()
            wf_config = self.config.workflow
            deploy_time = (
                wf_config.startup_s
                + wf_config.operator_deploy_s * self.workflow.num_operators
            )
            deploy_span = None
            if tracer.enabled:
                deploy_span = tracer.start(
                    "deploy",
                    category="workflow.deploy",
                    node=CONTROLLER,
                    parent=self._exec_span,
                    operators=self.workflow.num_operators,
                )
            try:
                yield self.env.timeout(deploy_time)
            finally:
                if deploy_span is not None:
                    tracer.end(deploy_span)
            for progress in (
                self.progress.of(op_id) for op_id in self._instances
            ):
                progress.transition(OperatorState.READY)

            processes = []
            for instances in self._instances.values():
                for instance in instances:
                    processes.append(self.env.process(self._run_instance(instance)))
            yield self.env.all_of(processes)
        except BaseException:
            for op_id in self._instances:
                progress = self.progress.of(op_id)
                if progress.state not in (
                    OperatorState.COMPLETED,
                    OperatorState.FAILED,
                ):
                    progress.transition(OperatorState.FAILED)
            for span in self._instance_spans:
                if not span.finished:
                    tracer.end(span, status="aborted")
            if self._exec_span is not None:
                tracer.end(self._exec_span, status="failed")
                self._exec_span = None
            raise

        results, charts = yield from self._gather_results()
        elapsed = self.env.now - start
        if self._exec_span is not None:
            tracer.end(self._exec_span, status="ok")
            self._exec_span = None
        stats = {
            op_id: {
                "instances": len(instances),
                "busy_s": round(sum(i.busy_s for i in instances), 6),
                "nodes": sorted({i.node.name for i in instances}),
            }
            for op_id, instances in self._instances.items()
        }
        return WorkflowResult(
            self.workflow,
            results,
            charts,
            self.progress,
            elapsed,
            num_worker_instances=sum(
                len(instances) for instances in self._instances.values()
            ),
            operator_stats=stats,
        )

    def _gather_results(self) -> Generator:
        """Pull sink tables back to the controller (network + decode)."""
        results: Dict[str, Table] = {}
        charts: Dict[str, Dict[str, Any]] = {}
        controller_node = self.cluster.node(CONTROLLER)
        for op_id, instances in self._instances.items():
            for instance in instances:
                executor = instance.executor
                if not isinstance(executor, _SinkExecutor):
                    continue
                table = executor.collected()
                nbytes = table.payload_bytes()
                yield self.env.process(
                    self.cluster.transfer(instance.node.name, CONTROLLER, nbytes)
                )
                codec = self.cluster.codecs.python
                decode_s = codec.decode_time(nbytes)
                tracer = self.tracer
                span = None
                if tracer.enabled:
                    record_codec(tracer, codec, "decode", nbytes, 0, decode_s)
                    span = tracer.start(
                        "gather-sink",
                        category="serialization",
                        node=CONTROLLER,
                        parent=self._exec_span,
                        sink=op_id,
                        nbytes=nbytes,
                    )
                try:
                    yield from controller_node.compute(decode_s)
                finally:
                    if span is not None:
                        tracer.end(span)
                results[op_id] = table
                if isinstance(executor, _VisualizationExecutor):
                    charts[op_id] = executor.chart_spec()
        return results, charts

    # -- instance loop ------------------------------------------------------------

    def _run_instance(self, instance: _Instance) -> Generator:
        # NOTE: always dereference ``instance.executor`` — a
        # checkpoint restore replaces it mid-run, so a local alias
        # captured here would go stale after the first restart.
        operator = instance.operator
        tracer = self.tracer
        span = None
        if tracer.enabled:
            span = tracer.start(
                f"{operator.operator_id}[{instance.worker_index}]",
                category="workflow.operator",
                node=instance.node.name,
                parent=self._exec_span,
                operator=operator.operator_id,
                language=operator.language.value,
            )
            self._instance_spans.append(span)
        try:
            instance.executor.open()
            yield from self._settle_charges(
                instance, cache_key=self._phase_key(instance, "open")
            )
            if isinstance(instance.executor, SourceExecutor):
                yield from self._run_source(instance)
            else:
                yield from self._run_consumer(instance)
            instance.executor.close()
            yield from self._settle_charges(
                instance, cache_key=self._phase_key(instance, "close")
            )
            yield from self._finish_outbound(instance)
        except OperatorError:
            if span is not None:
                tracer.end(span, status="failed")
            raise
        except Exception as exc:
            if span is not None:
                tracer.end(span, status="failed", error=type(exc).__name__)
            raise OperatorError(operator.operator_id, str(exc)) from exc
        finally:
            self.scheduler.release(instance.node.name)
        if span is not None:
            tracer.end(span, status="ok", busy_s=round(instance.busy_s, 9))
        progress = self.progress.of(operator.operator_id)
        progress.worker_completed()
        if progress.state is OperatorState.COMPLETED:
            progress.completed_at = self.env.now

    def _run_source(self, instance: _Instance) -> Generator:
        batch_size = (
            instance.operator.output_batch_size
            or self.config.workflow.default_batch_size
        )
        buffer: List[Tuple] = []
        for row in instance.executor.produce():  # type: ignore[attr-defined]
            buffer.append(row)
            if len(buffer) >= batch_size:
                yield from self._pause_point()
                yield from self._settle_charges(
                    instance, cache_key=self._roll_key(instance, "src", buffer)
                )
                yield from self._emit(instance, buffer)
                buffer = []
        yield from self._settle_charges(
            instance, cache_key=self._roll_key(instance, "src", buffer)
        )
        if buffer:
            yield from self._emit(instance, buffer)

    def _run_consumer(self, instance: _Instance) -> Generator:
        operator = instance.operator
        faults = self.env.faults
        memory = self.cluster.memory
        for port_number in range(operator.num_input_ports):
            tuple_cost = operator.tuple_cost_s(port_number)
            port = instance.inbound[port_number]
            eos_seen = 0
            while eos_seen < port.expected_eos:
                get = port.store.get()
                try:
                    message = yield get
                except BaseException:
                    # Instance killed (operator fault escalation, abort)
                    # while blocked on its input channel: withdraw the
                    # get so an already-granted batch returns to the
                    # queue head for a restarted instance.
                    get.cancel()
                    raise
                if isinstance(message, _Eos):
                    eos_seen += 1
                    continue
                yield from self._pause_point()
                yield from self._consume_batch(
                    instance, port, port_number, message, tuple_cost
                )
                if memory.active:
                    # The channel buffer's RAM reservation (made by the
                    # producer's _flush) is held until the batch is
                    # fully consumed — bounded channels genuinely pin
                    # consumer-side memory under pressure.
                    memory.free_anonymous(instance.node.name, message.nbytes)
                if faults.active:
                    instance.epoch += 1
            flushed = list(instance.executor.on_finish(port_number))
            yield from self._settle_charges(
                instance,
                cache_key=self._phase_key(instance, f"finish{port_number}"),
            )
            if flushed:
                yield from self._emit(instance, flushed)

    def _consume_batch(
        self,
        instance: _Instance,
        port: _InboundPort,
        port_number: int,
        message: _Batch,
        tuple_cost: float,
    ) -> Generator:
        """Decode, process and emit one input batch — exactly once.

        The batch is the engine's epoch: under fault injection the
        executor state is checkpointed at the batch boundary (after the
        upstream epoch marker, before any tuple of this batch), and an
        injected operator crash rolls the executor back to that
        checkpoint and replays the whole batch.  Outputs are only
        emitted after the batch completes, so downstream never sees
        tuples from an attempt that died mid-batch.
        """
        operator = instance.operator
        faults = self.env.faults
        wf_config = self.config.workflow
        cache = self.cluster.cache
        # The batch's cache key folds its content hash into a rolling
        # prefix kept per (port, producer instance), so the key encodes
        # the executor's entire input history from that upstream stream
        # — each producer's sequence is deterministic even when fan-in
        # arrival *order* is not.  Looked up exactly ONCE per epoch —
        # fault replays of this batch re-enter the loop below without
        # touching the cache again, so hit/miss/insert statistics stay
        # identical whether or not an operator fault fired mid-batch.
        batch_key = self._roll_key(
            instance, f"p{port_number}:{message.source}", message.tuples
        )
        hit = (
            batch_key is not None
            and cache.lookup(batch_key, tracer=self.tracer) is not None
        )
        snapshot = None
        while True:
            if hit:
                # Cached epoch: one lookup charge replaces decode +
                # batch handling; the tuples are still processed (for
                # real, below) so outputs stay bit-identical.
                yield from self._charge_hit(
                    instance, f"{operator.operator_id}:p{port_number}"
                )
            else:
                # Decode + handling on the consumer's node (re-charged
                # on replay: the restarted executor re-reads the batch).
                decode_s = port.codec.decode_time(
                    message.nbytes, len(message.tuples)
                )
                tracer = self.tracer
                span = None
                if tracer.enabled:
                    record_codec(
                        tracer,
                        port.codec,
                        "decode",
                        message.nbytes,
                        len(message.tuples),
                        decode_s,
                    )
                    span = tracer.start(
                        f"decode:{port.codec.name}",
                        category="serialization",
                        node=instance.node.name,
                        nbytes=message.nbytes,
                    )
                try:
                    yield from self._instance_compute(
                        instance,
                        decode_s + wf_config.batch_handling_s,
                    )
                finally:
                    if span is not None:
                        tracer.end(span)
            if faults.active and snapshot is None:
                # Checkpoint at the epoch boundary: executor state
                # before any tuple of this batch mutates it.
                snapshot = copy.deepcopy(instance.executor)
                yield from self._instance_compute(instance, wf_config.checkpoint_s)
            fault = (
                faults.take_operator_fault(operator.operator_id, self.env.now)
                if faults.active
                else None
            )
            if fault is None:
                outputs: List[Tuple] = []
                seconds = 0.0
                flops = 0.0
                executor = instance.executor
                process_tuple = executor.process_tuple
                take_pending = executor.pending.take
                extend = outputs.extend
                for row in message.tuples:
                    extend(process_tuple(row, port_number))
                    extra_s, extra_f = take_pending()
                    seconds += tuple_cost + extra_s
                    flops += extra_f
                self.progress.record_input(
                    operator.operator_id, len(message.tuples), now=self.env.now
                )
                if hit:
                    # Per-tuple work was memoized; the accumulated
                    # charges are dropped (the real Python processing
                    # above already produced the outputs for free).
                    pass
                else:
                    yield from self._charge(instance, seconds, flops)
                    if batch_key is not None:
                        cache.insert(
                            batch_key,
                            message.nbytes,
                            instance.node.name,
                            kind="batch",
                            tracer=self.tracer,
                        )
                if outputs:
                    yield from self._emit(instance, outputs)
                return
            # Injected crash mid-batch: half the tuples' work is done
            # and lost, then the operator restarts from the checkpoint.
            crash_at = len(message.tuples) // 2
            partial_s = 0.0
            partial_f = 0.0
            for row in message.tuples[:crash_at]:
                instance.executor.process_tuple(row, port_number)
                extra_s, extra_f = instance.executor.pending.take()
                partial_s += tuple_cost + extra_s
                partial_f += extra_f
            yield from self._charge(instance, partial_s, partial_f)
            yield from self._restart_from_checkpoint(instance, snapshot)

    def _restart_from_checkpoint(
        self, instance: _Instance, snapshot: OperatorExecutor
    ) -> Generator:
        """Roll the executor back to the epoch checkpoint and recover."""
        faults = self.env.faults
        faults.retries += 1
        instance.restarts += 1
        tracer = self.tracer
        start = self.env.now
        span = None
        if tracer.enabled:
            tracer.metrics.counter("faults.retries").inc()
            span = tracer.start(
                f"restart:{instance.operator_id}[{instance.worker_index}]",
                category="faults.recovery",
                node=instance.node.name,
                parent=self._exec_span,
                epoch=instance.epoch,
            )
        try:
            # A fresh copy of the snapshot each time, so the snapshot
            # itself survives repeated crashes of the same batch.
            instance.executor = copy.deepcopy(snapshot)
            yield from self._instance_compute(
                instance, self.config.workflow.operator_restart_s
            )
        finally:
            if span is not None:
                tracer.end(span)
            if tracer.enabled:
                tracer.metrics.counter("faults.recovery.virtual_seconds").add(
                    self.env.now - start
                )

    # -- cost settlement -----------------------------------------------------------

    def _instance_compute(
        self, instance: _Instance, duration: float, cores: int = 1
    ) -> Generator:
        """Charge node compute and attribute it to the instance."""
        if duration <= 0:
            return
        instance.busy_s += duration * cores
        yield from instance.node.compute(duration, cores=cores)

    def _charge(self, instance: _Instance, seconds: float, flops: float) -> Generator:
        if seconds > 0:
            yield from self._instance_compute(instance, seconds)
        if flops > 0:
            wf_config = self.config.workflow
            machine = self.config.topology.machine
            cores = instance.operator.framework_cores
            if cores is None:
                cores = wf_config.torch_cores_per_operator
            cores = min(cores, instance.node.num_cpus)
            effective = 1.0 + (cores - 1) * wf_config.multicore_efficiency
            duration = flops / (machine.flops_per_core_per_s * effective)
            yield from self._instance_compute(instance, duration, cores=cores)

    def _settle_charges(
        self, instance: _Instance, cache_key: Optional[str] = None
    ) -> Generator:
        seconds, flops = instance.executor.pending.take()
        if cache_key is not None and (seconds > 0 or flops > 0):
            # Memoizable settle point (open / per-source-batch /
            # on_finish / close).  The key encodes the instance's full
            # input history, so a hit is only possible when a previous
            # run reached this exact state — and then paid these exact
            # charges.
            cache = self.cluster.cache
            if cache.lookup(cache_key, tracer=self.tracer) is not None:
                yield from self._charge_hit(instance, instance.operator_id)
                return
            yield from self._charge(instance, seconds, flops)
            cache.insert(
                cache_key,
                0,
                instance.node.name,
                kind="operator",
                tracer=self.tracer,
            )
            return
        yield from self._charge(instance, seconds, flops)

    # -- result caching (repro.cache) ---------------------------------------------

    def _roll_key(
        self, instance: _Instance, stream: str, rows: Sequence[Tuple]
    ) -> Optional[str]:
        """Fold a batch's content into the stream's rolling prefix key."""
        if instance.cache_chain is None:
            return None
        content = fingerprint_value([t.values for t in rows])
        previous = instance.cache_keys.get(stream, "")
        key = combine(instance.cache_chain, stream, previous, content)
        instance.cache_keys[stream] = key
        return key

    def _phase_key(self, instance: _Instance, tag: str) -> Optional[str]:
        """Key for a lifecycle settle (open/on_finish/close).

        Mixes in every stream's current rolling key, so the phase only
        hits when the instance consumed exactly the same history as the
        cached run.
        """
        if instance.cache_chain is None:
            return None
        parts: List[Any] = [instance.cache_chain, tag]
        for stream in sorted(instance.cache_keys):
            parts.append(stream)
            parts.append(instance.cache_keys[stream])
        return combine(*parts)

    def _charge_hit(self, instance: _Instance, label: str) -> Generator:
        """Charge one cache-hit lookup against the instance's node."""
        cost = self.cluster.cache.lookup_s
        tracer = self.tracer
        span = None
        if tracer.enabled:
            span = tracer.start(
                f"cache.hit:{label}",
                category="cache",
                node=instance.node.name,
                lookup_s=cost,
            )
            tracer.metrics.counter("cache.lookup.seconds").add(cost)
        try:
            if cost > 0:
                yield from self._instance_compute(instance, cost)
        finally:
            if span is not None:
                tracer.end(span)

    # -- emission --------------------------------------------------------------------

    def _emit(self, instance: _Instance, rows: Sequence[Tuple]) -> Generator:
        """Send output tuples downstream, flushing full batches."""
        self.progress.record_output(instance.operator_id, len(rows), now=self.env.now)
        for outbound in instance.outbound:
            if len(outbound._buffers) == 1:
                # Single-consumer channel: every partitioner routes every
                # row to index 0 (round-robin and hash both reduce mod 1,
                # broadcast spans one target), so skip per-row routing and
                # fill the buffer directly.  Flush boundaries are checked
                # per row exactly as in the general path, so batch sizes —
                # and therefore encode/transfer charges — are unchanged.
                buffer = outbound._buffers[0]
                size = outbound.batch_size
                for row in rows:
                    buffer.append(row)
                    if len(buffer) >= size:
                        yield from self._flush(instance, outbound, 0)
                        # _flush swapped in a fresh buffer and may have
                        # auto-tuned the batch size; re-read both.
                        buffer = outbound._buffers[0]
                        size = outbound.batch_size
                continue
            for row in rows:
                for index in outbound.append(row):
                    yield from self._flush(instance, outbound, index)

    def _flush(self, instance: _Instance, outbound: _Outbound, index: int) -> Generator:
        rows = outbound.take_buffer(index)
        if not rows:
            return
        batch = _Batch(
            rows, source=f"{instance.operator_id}#{instance.worker_index}"
        )
        outbound.observe_batch(batch)
        tracer = self.tracer
        link = f"{outbound.link.producer_id}->{outbound.link.consumer_id}"
        if tracer.enabled:
            tracer.metrics.counter("workflow.batches", link=link).inc()
            tracer.metrics.counter("workflow.tuples", link=link).add(
                len(batch.tuples)
            )
            tracer.metrics.counter("workflow.bytes", link=link).add(batch.nbytes)
        destination = outbound.consumer_nodes[index]
        # Channel memo: the rolling key encodes everything this channel
        # has carried so far, so a hit means a previous run already
        # encoded and shipped this exact batch sequence — the consumer
        # can read it from the cached result instead (Texera's operator
        # result cache).  The batch itself still flows: admission
        # backpressure and the consumer queue see it either way.
        cache = self.cluster.cache
        flush_key = self._roll_key(
            instance, f"flush:{outbound.link.consumer_id}:{index}", rows
        )
        if flush_key is not None and cache.lookup(flush_key, tracer=tracer) is not None:
            yield from self._charge_hit(instance, link)
        else:
            # Encode + handling on the producer's node.
            encode_s = outbound.codec.encode_time(batch.nbytes, len(batch.tuples))
            span = None
            if tracer.enabled:
                record_codec(
                    tracer, outbound.codec, "encode", batch.nbytes,
                    len(batch.tuples), encode_s,
                )
                span = tracer.start(
                    f"encode:{outbound.codec.name}",
                    category="serialization",
                    node=instance.node.name,
                    nbytes=batch.nbytes,
                )
            try:
                yield from self._instance_compute(
                    instance,
                    encode_s + self.config.workflow.batch_handling_s,
                )
            finally:
                if span is not None:
                    tracer.end(span)
            if destination.name != instance.node.name:
                yield self.env.process(
                    self.cluster.transfer(
                        instance.node.name, destination.name, batch.nbytes
                    )
                )
            if flush_key is not None:
                cache.insert(
                    flush_key,
                    batch.nbytes,
                    instance.node.name,
                    kind="channel",
                    tracer=tracer,
                )
        memory = self.cluster.memory
        if memory.active:
            # Admission backpressure on the consumer's node: above the
            # watermark this blocks (FIFO) until RAM frees, so channel
            # buffers participate in memory pressure instead of
            # growing unaccounted.  Released by _run_consumer once the
            # batch is consumed.
            yield from memory.allocate(destination.name, batch.nbytes)
        store = outbound.consumer_ports[index].store
        if tracer.enabled:
            tracer.metrics.histogram("workflow.queue_depth", link=link).record(
                len(store)
            )
        put = store.put(batch)
        try:
            yield put
        except BaseException:
            # Producer killed while blocked on a full channel: withdraw
            # the pending put so the batch doesn't materialize after its
            # producer is gone.
            put.cancel()
            raise

    def _finish_outbound(self, instance: _Instance) -> Generator:
        """Flush residual buffers and propagate EOS markers."""
        for outbound in instance.outbound:
            for index in outbound.pending_indices():
                yield from self._flush(instance, outbound, index)
            for port in outbound.consumer_ports:
                put = port.store.put(_EOS)
                try:
                    yield put
                except BaseException:
                    put.cancel()
                    raise


def run_workflow(
    cluster: Cluster,
    workflow: Workflow,
    config: Optional[ReproConfig] = None,
) -> WorkflowResult:
    """Execute ``workflow`` on ``cluster``; blocks the (virtual) world.

    Returns the :class:`WorkflowResult`; total virtual duration is
    ``result.elapsed_s`` (also visible as the advance of
    ``cluster.env.now``).
    """
    controller = WorkflowController(cluster, workflow, config)
    return cluster.env.run(until=cluster.env.process(controller.execute()))
