"""Operator states and tuple-count progress.

The paper highlights (Section III-A) that the workflow paradigm shows
*data* progress: each operator is colored by state and annotated with
input/output tuple counts (Figure 9).  This module is the engine's
equivalent — a queryable tracker the "GUI" (tests, examples, the
experiment harness) reads.
"""

from __future__ import annotations

import enum
from typing import Dict, List

from repro.errors import WorkflowError

__all__ = ["OperatorState", "OperatorProgress", "ProgressTracker"]


class OperatorState(enum.Enum):
    """Lifecycle states, matching Texera's operator coloring."""

    UNINITIALIZED = "uninitialized"
    READY = "ready"
    RUNNING = "running"
    PAUSED = "paused"
    COMPLETED = "completed"
    FAILED = "failed"


_ALLOWED = {
    # UNINITIALIZED -> RUNNING covers data arriving before the deploy
    # acknowledgment lands (seen when a tracker is driven directly).
    OperatorState.UNINITIALIZED: {
        OperatorState.READY,
        OperatorState.RUNNING,
        OperatorState.FAILED,
    },
    OperatorState.READY: {OperatorState.RUNNING, OperatorState.COMPLETED, OperatorState.FAILED},
    OperatorState.RUNNING: {
        OperatorState.PAUSED,
        OperatorState.COMPLETED,
        OperatorState.FAILED,
    },
    OperatorState.PAUSED: {OperatorState.RUNNING, OperatorState.FAILED},
    OperatorState.COMPLETED: set(),
    OperatorState.FAILED: set(),
}


class OperatorProgress:
    """Aggregated progress of one operator across its worker instances."""

    def __init__(self, operator_id: str, num_workers: int) -> None:
        self.operator_id = operator_id
        self.num_workers = num_workers
        self.state = OperatorState.UNINITIALIZED
        self.input_tuples = 0
        self.output_tuples = 0
        self._completed_workers = 0
        #: Virtual time the operator finished (set by the engine).
        self.completed_at: float = float("nan")
        #: Virtual time the operator first saw or produced data.
        self.started_at: float = float("nan")

    def transition(self, state: OperatorState) -> None:
        if state is self.state:
            return
        if state not in _ALLOWED[self.state]:
            raise WorkflowError(
                f"operator {self.operator_id!r}: illegal state transition "
                f"{self.state.value} -> {state.value}"
            )
        self.state = state

    def worker_completed(self) -> None:
        """One instance finished; operator completes when all have."""
        self._completed_workers += 1
        if self._completed_workers == self.num_workers:
            self.transition(OperatorState.COMPLETED)

    def describe(self) -> str:
        """One line of the Figure 9-style display."""
        return (
            f"{self.operator_id}: {self.state.value} "
            f"(in={self.input_tuples}, out={self.output_tuples})"
        )


class ProgressTracker:
    """Progress of every operator in one workflow execution."""

    def __init__(self) -> None:
        self._operators: Dict[str, OperatorProgress] = {}

    def register(self, operator_id: str, num_workers: int) -> OperatorProgress:
        if operator_id in self._operators:
            raise WorkflowError(f"operator {operator_id!r} already registered")
        progress = OperatorProgress(operator_id, num_workers)
        self._operators[operator_id] = progress
        return progress

    def of(self, operator_id: str) -> OperatorProgress:
        try:
            return self._operators[operator_id]
        except KeyError:
            raise WorkflowError(
                f"operator {operator_id!r} not registered"
            ) from None

    def record_input(self, operator_id: str, count: int = 1, now: float = float("nan")) -> None:
        progress = self.of(operator_id)
        if progress.state in (OperatorState.READY, OperatorState.UNINITIALIZED):
            progress.transition(OperatorState.RUNNING)
            progress.started_at = now
        progress.input_tuples += count

    def record_output(self, operator_id: str, count: int = 1, now: float = float("nan")) -> None:
        progress = self.of(operator_id)
        if progress.state in (OperatorState.READY, OperatorState.UNINITIALIZED):
            progress.transition(OperatorState.RUNNING)
            progress.started_at = now
        progress.output_tuples += count

    def all_completed(self) -> bool:
        return all(
            p.state is OperatorState.COMPLETED for p in self._operators.values()
        )

    def snapshot(self) -> Dict[str, Dict[str, object]]:
        """Immutable view of the whole board."""
        return {
            op_id: {
                "state": progress.state.value,
                "input_tuples": progress.input_tuples,
                "output_tuples": progress.output_tuples,
            }
            for op_id, progress in self._operators.items()
        }

    def describe(self) -> List[str]:
        """Figure 9-style textual board, one line per operator."""
        return [p.describe() for p in self._operators.values()]
