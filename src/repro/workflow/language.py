"""Operator implementation languages and their runtime cost profiles.

Texera operators can be implemented in multiple languages (paper
Section III-C); the engine charges per-tuple execution costs according
to the operator's language profile and picks serialization codecs per
edge according to the producer/consumer language pair (Section III-D).
"""

from __future__ import annotations

import enum

from repro.config import LANGUAGE_PROFILES, LanguageProfile

__all__ = ["OperatorLanguage"]


class OperatorLanguage(enum.Enum):
    """Languages an operator can be implemented in."""

    PYTHON = "python"
    SCALA = "scala"
    JAVA = "java"

    @property
    def profile(self) -> LanguageProfile:
        """The calibrated cost profile for this language."""
        return LANGUAGE_PROFILES[self.value]

    def tuple_cost(self, declared_work_s: float) -> float:
        """Per-tuple cost: interpreter overhead + scaled declared work.

        ``declared_work_s`` is the operator's per-tuple work expressed
        at Python speed; faster languages divide it by their relative
        speed (Table I's mechanism).
        """
        if declared_work_s < 0:
            raise ValueError(f"negative declared work: {declared_work_s}")
        profile = self.profile
        return profile.tuple_overhead_s + declared_work_s / profile.relative_speed
