"""Tuple routing between producer and consumer worker instances.

When an operator runs with several workers, each upstream instance must
decide which downstream instance receives each tuple.  Stateless
consumers use round-robin; stateful consumers (joins, group-bys)
require hash partitioning on their key so equal keys meet at the same
worker; broadcast replicates every tuple to all instances.

Hashing uses CRC32 of the key's repr — stable across processes and
Python versions, keeping simulated timings reproducible (Python's own
``hash`` is salted per process).
"""

from __future__ import annotations

import abc
import zlib
from typing import Iterable, List

from repro.relational import Tuple

__all__ = ["Partitioner", "RoundRobinPartitioner", "HashPartitioner", "BroadcastPartitioner", "stable_hash"]


def stable_hash(value: object) -> int:
    """Deterministic non-negative hash of an arbitrary value."""
    return zlib.crc32(repr(value).encode("utf-8"))


class Partitioner(abc.ABC):
    """Chooses destination instance indices for each tuple."""

    def __init__(self, num_consumers: int) -> None:
        if num_consumers < 1:
            raise ValueError(f"num_consumers must be >= 1, got {num_consumers}")
        self.num_consumers = num_consumers

    @abc.abstractmethod
    def route(self, row: Tuple) -> Iterable[int]:
        """Destination instance indices for ``row``."""


class RoundRobinPartitioner(Partitioner):
    """Cycle through consumers; balances load for stateless operators."""

    def __init__(self, num_consumers: int) -> None:
        super().__init__(num_consumers)
        self._next = 0

    def route(self, row: Tuple) -> List[int]:
        index = self._next
        self._next = (self._next + 1) % self.num_consumers
        return [index]


class HashPartitioner(Partitioner):
    """Route by stable hash of one key field (co-locates equal keys)."""

    def __init__(self, num_consumers: int, key: str) -> None:
        super().__init__(num_consumers)
        self.key = key

    def route(self, row: Tuple) -> List[int]:
        return [stable_hash(row[self.key]) % self.num_consumers]


class BroadcastPartitioner(Partitioner):
    """Replicate every tuple to every consumer instance."""

    def route(self, row: Tuple) -> List[int]:
        return list(range(self.num_consumers))
