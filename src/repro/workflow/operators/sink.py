"""Sink operators: where workflow results land.

The paper's workflows end in a "View Results" operator (Figure 9) or a
visualization operator (Figure 2); both collect tuples at a single
worker, and the controller fetches the collected table when the
execution completes.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence

from repro.errors import InvalidWorkflow
from repro.relational import Schema, Table, Tuple
from repro.workflow.language import OperatorLanguage
from repro.workflow.operator import LogicalOperator, OperatorExecutor

__all__ = ["SinkOperator", "VisualizationOperator"]


class _SinkExecutor(OperatorExecutor):
    def __init__(self, schema: Schema) -> None:
        super().__init__()
        self.schema = schema
        self.rows: List[Tuple] = []

    def process_tuple(self, row: Tuple, port: int) -> Iterable[Tuple]:
        self.rows.append(row)
        return ()

    def collected(self) -> Table:
        return Table(self.schema, self.rows)


class SinkOperator(LogicalOperator):
    """Collect all input tuples ("View Results")."""

    def __init__(
        self,
        operator_id: str,
        language: OperatorLanguage = OperatorLanguage.PYTHON,
        per_tuple_work_s: float = 1.0e-7,
    ) -> None:
        super().__init__(operator_id, language, 1, per_tuple_work_s)
        self._schema: Optional[Schema] = None

    @property
    def num_output_ports(self) -> int:
        return 0

    def output_schema(self, input_schemas: Sequence[Schema]) -> Schema:
        (schema,) = input_schemas
        self._schema = schema
        return schema

    def create_executor(self, worker_index: int = 0):
        if self._schema is None:
            raise InvalidWorkflow(
                f"sink {self.operator_id!r}: compile the workflow first"
            )
        return _SinkExecutor(self._schema)


class _VisualizationExecutor(_SinkExecutor):
    def __init__(self, schema: Schema, chart_type: str, x: str, y: Optional[str]) -> None:
        super().__init__(schema)
        self._chart_type = chart_type
        self._x = x
        self._y = y

    def chart_spec(self) -> Dict[str, object]:
        """A minimal declarative chart specification of the collected data."""
        spec: Dict[str, object] = {
            "chart": self._chart_type,
            "x": {"field": self._x, "values": [row[self._x] for row in self.rows]},
        }
        if self._y is not None:
            spec["y"] = {"field": self._y, "values": [row[self._y] for row in self.rows]}
        return spec


class VisualizationOperator(SinkOperator):
    """Sink that additionally renders a chart spec from its input.

    The GUI would draw this; here the spec is an inspectable dict
    (DESIGN.md section 6 — GUI aspects exposed as Python objects).
    """

    CHART_TYPES = ("bar", "line", "scatter", "pie")

    def __init__(
        self,
        operator_id: str,
        chart_type: str,
        x_field: str,
        y_field: Optional[str] = None,
        language: OperatorLanguage = OperatorLanguage.PYTHON,
        per_tuple_work_s: float = 3.0e-7,
    ) -> None:
        if chart_type not in self.CHART_TYPES:
            raise InvalidWorkflow(
                f"visualization {operator_id!r}: unknown chart type "
                f"{chart_type!r}; expected one of {self.CHART_TYPES}"
            )
        super().__init__(operator_id, language, per_tuple_work_s)
        self.chart_type = chart_type
        self.x_field = x_field
        self.y_field = y_field

    def output_schema(self, input_schemas: Sequence[Schema]) -> Schema:
        (schema,) = input_schemas
        schema.index_of(self.x_field)
        if self.y_field is not None:
            schema.index_of(self.y_field)
        return super().output_schema(input_schemas)

    def create_executor(self, worker_index: int = 0):
        if self._schema is None:
            raise InvalidWorkflow(
                f"visualization {self.operator_id!r}: compile the workflow first"
            )
        return _VisualizationExecutor(
            self._schema, self.chart_type, self.x_field, self.y_field
        )
