"""Stateless row-at-a-time operators: filter, projection, map.

These are the bread-and-butter operators of the paper's workflows
("ranging from simple filtering and projection to visualization").
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Optional, Sequence

from repro.errors import InvalidWorkflow
from repro.relational import Predicate, Schema, Tuple
from repro.workflow.language import OperatorLanguage
from repro.workflow.operator import LogicalOperator, OperatorExecutor

__all__ = [
    "FilterOperator",
    "ProjectionOperator",
    "MapOperator",
    "FlatMapOperator",
    "UnionOperator",
]


class _FilterExecutor(OperatorExecutor):
    def __init__(self, predicate: Predicate) -> None:
        super().__init__()
        self._predicate = predicate

    def process_tuple(self, row: Tuple, port: int) -> Iterable[Tuple]:
        if self._predicate(row):
            yield row


class FilterOperator(LogicalOperator):
    """Keep rows satisfying a :class:`~repro.relational.Predicate`."""

    def __init__(
        self,
        operator_id: str,
        predicate: Predicate,
        language: OperatorLanguage = OperatorLanguage.PYTHON,
        num_workers: int = 1,
        per_tuple_work_s: float = 2.0e-7,
    ) -> None:
        super().__init__(operator_id, language, num_workers, per_tuple_work_s)
        self.predicate = predicate

    def required_input_columns(self, port, required_output=None):
        if required_output is None or self.predicate.columns is None:
            return None
        return frozenset(required_output) | self.predicate.columns

    def output_schema(self, input_schemas: Sequence[Schema]) -> Schema:
        (schema,) = input_schemas
        return schema

    def create_executor(self, worker_index: int = 0):
        return _FilterExecutor(self.predicate)


class _ProjectionExecutor(OperatorExecutor):
    def __init__(self, names: Sequence[str]) -> None:
        super().__init__()
        self._names = list(names)

    def process_tuple(self, row: Tuple, port: int) -> Iterable[Tuple]:
        yield row.project(self._names)


class ProjectionOperator(LogicalOperator):
    """Keep (and reorder) a subset of columns."""

    def __init__(
        self,
        operator_id: str,
        columns: Sequence[str],
        language: OperatorLanguage = OperatorLanguage.PYTHON,
        num_workers: int = 1,
        per_tuple_work_s: float = 1.5e-7,
    ) -> None:
        if not columns:
            raise InvalidWorkflow(f"projection {operator_id!r} keeps no columns")
        super().__init__(operator_id, language, num_workers, per_tuple_work_s)
        self.columns = list(columns)

    def required_input_columns(self, port, required_output=None):
        return frozenset(self.columns)

    def output_schema(self, input_schemas: Sequence[Schema]) -> Schema:
        (schema,) = input_schemas
        return schema.project(self.columns)

    def create_executor(self, worker_index: int = 0):
        return _ProjectionExecutor(self.columns)


class _MapExecutor(OperatorExecutor):
    def __init__(
        self,
        schema: Schema,
        fn: Callable[[Tuple], Sequence[Any]],
        flops_fn: Optional[Callable[[Tuple], float]],
        extra_seconds_fn: Optional[Callable[[Tuple], float]],
    ) -> None:
        super().__init__()
        self._schema = schema
        self._fn = fn
        self._flops_fn = flops_fn
        self._extra_seconds_fn = extra_seconds_fn

    def process_tuple(self, row: Tuple, port: int) -> Iterable[Tuple]:
        if self._flops_fn is not None:
            self.charge_flops(self._flops_fn(row))
        if self._extra_seconds_fn is not None:
            self.charge(self._extra_seconds_fn(row))
        yield Tuple(self._schema, self._fn(row))


class MapOperator(LogicalOperator):
    """One-in/one-out Python UDF producing rows of ``output_schema``.

    ``flops_per_tuple`` optionally declares framework compute per row
    (e.g. an embedding lookup + distance); it may be a constant or a
    function of the input row.  ``extra_seconds_fn`` declares
    data-dependent per-row work (e.g. proportional to a list field's
    length) on top of ``per_tuple_work_s``.
    """

    def __init__(
        self,
        operator_id: str,
        output_schema: Schema,
        fn: Callable[[Tuple], Sequence[Any]],
        language: OperatorLanguage = OperatorLanguage.PYTHON,
        num_workers: int = 1,
        per_tuple_work_s: float = 5.0e-7,
        flops_per_tuple: Optional[Any] = None,
        extra_seconds_fn: Optional[Callable[[Tuple], float]] = None,
    ) -> None:
        super().__init__(operator_id, language, num_workers, per_tuple_work_s)
        self._output_schema = output_schema
        self.fn = fn
        self.extra_seconds_fn = extra_seconds_fn
        if flops_per_tuple is None or callable(flops_per_tuple):
            self.flops_fn = flops_per_tuple
        else:
            constant = float(flops_per_tuple)
            self.flops_fn = lambda _row: constant

    def output_schema(self, input_schemas: Sequence[Schema]) -> Schema:
        return self._output_schema

    def create_executor(self, worker_index: int = 0):
        return _MapExecutor(
            self._output_schema, self.fn, self.flops_fn, self.extra_seconds_fn
        )


class _FlatMapExecutor(OperatorExecutor):
    def __init__(
        self,
        schema: Schema,
        fn: Callable[[Tuple], Iterable[Sequence[Any]]],
        extra_seconds_fn: Optional[Callable[[Tuple], float]],
    ) -> None:
        super().__init__()
        self._schema = schema
        self._fn = fn
        self._extra_seconds_fn = extra_seconds_fn

    def process_tuple(self, row: Tuple, port: int) -> Iterable[Tuple]:
        if self._extra_seconds_fn is not None:
            self.charge(self._extra_seconds_fn(row))
        for values in self._fn(row):
            yield Tuple(self._schema, values)


class FlatMapOperator(LogicalOperator):
    """One-in/many-out Python UDF (e.g. document -> sentences)."""

    def __init__(
        self,
        operator_id: str,
        output_schema: Schema,
        fn: Callable[[Tuple], Iterable[Sequence[Any]]],
        language: OperatorLanguage = OperatorLanguage.PYTHON,
        num_workers: int = 1,
        per_tuple_work_s: float = 8.0e-7,
        extra_seconds_fn: Optional[Callable[[Tuple], float]] = None,
    ) -> None:
        super().__init__(operator_id, language, num_workers, per_tuple_work_s)
        self._output_schema = output_schema
        self.fn = fn
        self.extra_seconds_fn = extra_seconds_fn

    def output_schema(self, input_schemas: Sequence[Schema]) -> Schema:
        return self._output_schema

    def create_executor(self, worker_index: int = 0):
        return _FlatMapExecutor(self._output_schema, self.fn, self.extra_seconds_fn)


class _UnionExecutor(OperatorExecutor):
    def process_tuple(self, row: Tuple, port: int) -> Iterable[Tuple]:
        yield row


class UnionOperator(LogicalOperator):
    """Union-all of N same-schema inputs (ports consumed in order)."""

    def __init__(
        self,
        operator_id: str,
        num_inputs: int = 2,
        language: OperatorLanguage = OperatorLanguage.PYTHON,
        num_workers: int = 1,
        per_tuple_work_s: float = 1.0e-7,
    ) -> None:
        if num_inputs < 2:
            raise InvalidWorkflow(
                f"union {operator_id!r}: num_inputs must be >= 2"
            )
        super().__init__(operator_id, language, num_workers, per_tuple_work_s)
        self._num_inputs = num_inputs

    @property
    def num_input_ports(self) -> int:
        return self._num_inputs

    def output_schema(self, input_schemas: Sequence[Schema]) -> Schema:
        first = input_schemas[0]
        for schema in input_schemas[1:]:
            if schema != first:
                raise InvalidWorkflow(
                    f"union {self.operator_id!r}: mismatched input schemas "
                    f"{first.names} vs {schema.names}"
                )
        return first

    def create_executor(self, worker_index: int = 0):
        return _UnionExecutor()
