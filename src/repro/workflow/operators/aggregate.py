"""Blocking operators: group-by aggregation and sort."""

from __future__ import annotations

import enum
from typing import Any, Dict, Iterable, List, Optional, Sequence

from repro.errors import InvalidWorkflow
from repro.relational import Field, FieldType, Schema, Tuple
from repro.workflow.language import OperatorLanguage
from repro.workflow.operator import LogicalOperator, OperatorExecutor

__all__ = ["AggregationFunction", "GroupByOperator", "SortOperator", "TopKOperator"]


class AggregationFunction(enum.Enum):
    """Aggregations supported by :class:`GroupByOperator`."""

    COUNT = "count"
    SUM = "sum"
    AVG = "avg"
    MIN = "min"
    MAX = "max"


class _GroupState:
    __slots__ = ("count", "total", "minimum", "maximum")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.minimum: Any = None
        self.maximum: Any = None

    def update(self, value: Any) -> None:
        self.count += 1
        if value is None:
            return
        self.total += value
        self.minimum = value if self.minimum is None else min(self.minimum, value)
        self.maximum = value if self.maximum is None else max(self.maximum, value)

    def result(self, fn: AggregationFunction) -> Any:
        if fn is AggregationFunction.COUNT:
            return self.count
        if fn is AggregationFunction.SUM:
            return self.total
        if fn is AggregationFunction.AVG:
            return self.total / self.count if self.count else None
        if fn is AggregationFunction.MIN:
            return self.minimum
        return self.maximum


class _GroupByExecutor(OperatorExecutor):
    def __init__(
        self,
        group_key: str,
        value_field: Optional[str],
        fn: AggregationFunction,
        out_schema: Schema,
    ) -> None:
        super().__init__()
        self._group_key = group_key
        self._value_field = value_field
        self._fn = fn
        self._out_schema = out_schema
        self._groups: Dict[Any, _GroupState] = {}

    def process_tuple(self, row: Tuple, port: int) -> Iterable[Tuple]:
        state = self._groups.setdefault(row[self._group_key], _GroupState())
        value = row[self._value_field] if self._value_field else 1
        state.update(value)
        return ()

    def on_finish(self, port: int) -> Iterable[Tuple]:
        for key in sorted(self._groups, key=repr):
            state = self._groups[key]
            yield Tuple(self._out_schema, [key, state.result(self._fn)])


class GroupByOperator(LogicalOperator):
    """Group rows by one key and aggregate one value field.

    Blocking: emits only when its input is exhausted.  With multiple
    workers, the compiler hash-partitions the input on the group key so
    each worker owns complete groups.
    """

    def __init__(
        self,
        operator_id: str,
        group_key: str,
        aggregation: AggregationFunction,
        value_field: Optional[str] = None,
        result_field: str = "result",
        language: OperatorLanguage = OperatorLanguage.PYTHON,
        num_workers: int = 1,
        per_tuple_work_s: float = 3.0e-7,
    ) -> None:
        if aggregation is not AggregationFunction.COUNT and value_field is None:
            raise InvalidWorkflow(
                f"group-by {operator_id!r}: {aggregation.value} needs value_field"
            )
        super().__init__(operator_id, language, num_workers, per_tuple_work_s)
        self.group_key = group_key
        self.aggregation = aggregation
        self.value_field = value_field
        self.result_field = result_field
        self._out_schema: Optional[Schema] = None

    @property
    def is_blocking(self) -> bool:
        return True

    def partition_key(self, port: int) -> Optional[str]:
        return self.group_key

    def output_schema(self, input_schemas: Sequence[Schema]) -> Schema:
        (schema,) = input_schemas
        key_field = schema.field(self.group_key)
        if self.value_field is not None:
            schema.index_of(self.value_field)
        result_type = (
            FieldType.INT
            if self.aggregation is AggregationFunction.COUNT
            else FieldType.FLOAT
        )
        self._out_schema = Schema(
            [Field(self.group_key, key_field.ftype), Field(self.result_field, result_type)]
        )
        return self._out_schema

    def create_executor(self, worker_index: int = 0):
        if self._out_schema is None:
            raise InvalidWorkflow(
                f"group-by {self.operator_id!r}: compile the workflow first"
            )
        return _GroupByExecutor(
            self.group_key, self.value_field, self.aggregation, self._out_schema
        )


class _SortExecutor(OperatorExecutor):
    def __init__(self, key: str, reverse: bool, per_tuple_sort_cost_s: float) -> None:
        super().__init__()
        self._key = key
        self._reverse = reverse
        self._rows: List[Tuple] = []
        self._per_tuple_sort_cost_s = per_tuple_sort_cost_s

    def process_tuple(self, row: Tuple, port: int) -> Iterable[Tuple]:
        self._rows.append(row)
        return ()

    def on_finish(self, port: int) -> Iterable[Tuple]:
        # Charge the sort itself (n log n, approximated linearly here
        # since the engine already charged per-tuple ingest costs).
        self.charge(self._per_tuple_sort_cost_s * len(self._rows))
        self._rows.sort(key=lambda row: row[self._key], reverse=self._reverse)
        return list(self._rows)


class SortOperator(LogicalOperator):
    """Total sort by one field.  Blocking; single worker only."""

    def __init__(
        self,
        operator_id: str,
        key: str,
        reverse: bool = False,
        language: OperatorLanguage = OperatorLanguage.PYTHON,
        per_tuple_work_s: float = 2.0e-7,
        per_tuple_sort_work_s: float = 4.0e-7,
    ) -> None:
        super().__init__(operator_id, language, 1, per_tuple_work_s)
        self.key = key
        self.reverse = reverse
        self.per_tuple_sort_work_s = per_tuple_sort_work_s

    @property
    def is_blocking(self) -> bool:
        return True

    def output_schema(self, input_schemas: Sequence[Schema]) -> Schema:
        (schema,) = input_schemas
        schema.index_of(self.key)
        return schema

    def create_executor(self, worker_index: int = 0):
        return _SortExecutor(
            self.key,
            self.reverse,
            self.language.tuple_cost(self.per_tuple_sort_work_s),
        )


class _TopKExecutor(OperatorExecutor):
    def __init__(self, key: str, k: int, reverse: bool) -> None:
        super().__init__()
        self._key = key
        self._k = k
        self._reverse = reverse
        self._rows: List[Tuple] = []

    def process_tuple(self, row: Tuple, port: int) -> Iterable[Tuple]:
        self._rows.append(row)
        return ()

    def on_finish(self, port: int) -> Iterable[Tuple]:
        self._rows.sort(key=lambda row: row[self._key], reverse=self._reverse)
        return list(self._rows[: self._k])


class TopKOperator(LogicalOperator):
    """Keep the K extreme rows by one field (blocking; single worker).

    ``reverse=True`` (default) keeps the K *largest* values — the shape
    of KGE's "score, rank, return the most likely products" step.
    """

    def __init__(
        self,
        operator_id: str,
        key: str,
        k: int,
        reverse: bool = True,
        language: OperatorLanguage = OperatorLanguage.PYTHON,
        per_tuple_work_s: float = 3.0e-7,
    ) -> None:
        if k < 1:
            raise InvalidWorkflow(f"top-k {operator_id!r}: k must be >= 1")
        super().__init__(operator_id, language, 1, per_tuple_work_s)
        self.key = key
        self.k = k
        self.reverse = reverse

    @property
    def is_blocking(self) -> bool:
        return True

    def output_schema(self, input_schemas: Sequence[Schema]) -> Schema:
        (schema,) = input_schemas
        schema.index_of(self.key)
        return schema

    def create_executor(self, worker_index: int = 0):
        return _TopKExecutor(self.key, self.k, self.reverse)
