"""Machine-learning operators: model application and training.

These mirror how Texera workflows wrap models:

* :class:`ModelApplyOperator` loads a model in ``open()`` (charging the
  load cost once per worker instance) and applies it per tuple,
  charging framework FLOPs which the engine runs *unpinned* across
  cores unless the operator narrows ``framework_cores``;
* :class:`TrainOperator` is blocking: it collects its labelled input,
  fine-tunes a model at end-of-input (sequential SGD, so
  ``framework_cores=1``), and emits a summary row per epoch.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Optional, Sequence

from repro.errors import InvalidWorkflow
from repro.relational import Field, FieldType, Schema, Tuple
from repro.workflow.language import OperatorLanguage
from repro.workflow.operator import LogicalOperator, OperatorExecutor

__all__ = ["ModelApplyOperator", "TrainOperator", "TRAIN_SUMMARY_SCHEMA"]


class _ModelApplyExecutor(OperatorExecutor):
    def __init__(self, operator: "ModelApplyOperator") -> None:
        super().__init__()
        self._op = operator
        self._model: Any = None

    def open(self) -> None:
        self._model = self._op.loader()
        self.charge(self._op.load_seconds)

    def process_tuple(self, row: Tuple, port: int) -> Iterable[Tuple]:
        self.charge_flops(self._op.flops_fn(self._model, row))
        values = self._op.apply_fn(self._model, row)
        yield Tuple(self._op.output_schema([]), values)

    def close(self) -> None:
        self._model = None


class ModelApplyOperator(LogicalOperator):
    """Per-tuple model inference with an ``open()``-time model load.

    Parameters
    ----------
    loader:
        Zero-argument callable returning the (real) model object; runs
        once per worker instance.
    load_seconds:
        Virtual cost of the load (disk read + initialization).  The
        paper's GOTTA analysis hinges on when/where this is paid.
    apply_fn:
        ``(model, row) -> values`` producing one output row.
    flops_fn:
        ``(model, row) -> FLOPs`` of the forward pass for this row.
    """

    def __init__(
        self,
        operator_id: str,
        output_schema: Schema,
        loader: Callable[[], Any],
        apply_fn: Callable[[Any, Tuple], Sequence[Any]],
        flops_fn: Callable[[Any, Tuple], float],
        load_seconds: float = 0.0,
        language: OperatorLanguage = OperatorLanguage.PYTHON,
        num_workers: int = 1,
        per_tuple_work_s: float = 5.0e-7,
        framework_cores: Optional[int] = None,
    ) -> None:
        if load_seconds < 0:
            raise InvalidWorkflow(
                f"model operator {operator_id!r}: negative load_seconds"
            )
        super().__init__(
            operator_id, language, num_workers, per_tuple_work_s, framework_cores
        )
        self._output_schema = output_schema
        self.loader = loader
        self.apply_fn = apply_fn
        self.flops_fn = flops_fn
        self.load_seconds = load_seconds

    def output_schema(self, input_schemas: Sequence[Schema]) -> Schema:
        return self._output_schema

    def create_executor(self, worker_index: int = 0):
        return _ModelApplyExecutor(self)


#: Output of :class:`TrainOperator`: one row per training epoch.
TRAIN_SUMMARY_SCHEMA = Schema(
    [
        Field("model_name", FieldType.STRING),
        Field("epoch", FieldType.INT),
        Field("loss", FieldType.FLOAT),
    ]
)


class _TrainExecutor(OperatorExecutor):
    def __init__(self, operator: "TrainOperator") -> None:
        super().__init__()
        self._op = operator
        self._examples = []

    def process_tuple(self, row: Tuple, port: int) -> Iterable[Tuple]:
        self._examples.append((row[self._op.text_field], row[self._op.label_field]))
        return ()

    def on_finish(self, port: int) -> Iterable[Tuple]:
        model = self._op.loader()
        self.charge(self._op.load_seconds)
        rows = []
        for epoch in range(self._op.epochs):
            loss = model.train_epoch(self._examples, self._op.learning_rate)
            self.charge_flops(
                sum(model.train_step_flops(text) for text, _ in self._examples)
            )
            rows.append(Tuple(TRAIN_SUMMARY_SCHEMA, [model.name, epoch, loss]))
        self._op.trained_model = model
        return rows


class TrainOperator(LogicalOperator):
    """Blocking fine-tuning of a :class:`SimBertClassifier`-like model.

    Emits one ``(model_name, epoch, loss)`` row per epoch; the trained
    model object is exposed on :attr:`trained_model` after execution
    (the analogue of the workflow writing a model artifact).

    Training is sequential SGD, so framework compute is pinned to one
    core *in both paradigms* — this is why the paper's WEF timings are
    nearly identical across platforms (Section IV-E).
    """

    def __init__(
        self,
        operator_id: str,
        loader: Callable[[], Any],
        text_field: str = "text",
        label_field: str = "label",
        epochs: int = 3,
        learning_rate: float = 0.5,
        load_seconds: float = 0.0,
        language: OperatorLanguage = OperatorLanguage.PYTHON,
        per_tuple_work_s: float = 5.0e-7,
    ) -> None:
        if epochs < 1:
            raise InvalidWorkflow(f"train operator {operator_id!r}: epochs >= 1")
        super().__init__(
            operator_id,
            language,
            num_workers=1,
            per_tuple_work_s=per_tuple_work_s,
            framework_cores=1,
        )
        self.loader = loader
        self.text_field = text_field
        self.label_field = label_field
        self.epochs = epochs
        self.learning_rate = learning_rate
        self.load_seconds = load_seconds
        self.trained_model: Any = None

    @property
    def is_blocking(self) -> bool:
        return True

    def output_schema(self, input_schemas: Sequence[Schema]) -> Schema:
        (schema,) = input_schemas
        schema.index_of(self.text_field)
        schema.index_of(self.label_field)
        return TRAIN_SUMMARY_SCHEMA

    def create_executor(self, worker_index: int = 0):
        return _TrainExecutor(self)
