"""Streaming utility operators: limit, distinct, sample.

All three are one-in/one-out, order-preserving and *streaming* (no
pipeline break): limit stops emitting after K rows, distinct suppresses
repeats, sample keeps a deterministic 1-in-N subset.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence, Set

from repro.errors import InvalidWorkflow
from repro.relational import Schema, Tuple
from repro.workflow.language import OperatorLanguage
from repro.workflow.operator import LogicalOperator, OperatorExecutor
from repro.workflow.partitioning import stable_hash

__all__ = ["LimitOperator", "DistinctOperator", "SampleOperator"]


class _LimitExecutor(OperatorExecutor):
    def __init__(self, limit: int) -> None:
        super().__init__()
        self._remaining = limit

    def process_tuple(self, row: Tuple, port: int) -> Iterable[Tuple]:
        if self._remaining > 0:
            self._remaining -= 1
            yield row


class LimitOperator(LogicalOperator):
    """Pass through the first K rows, drop the rest.

    Single worker (a distributed limit would need coordination);
    upstream operators keep running — the engine has no cancellation,
    matching how most dataflow engines implement LIMIT without
    side-channel abort.
    """

    def __init__(
        self,
        operator_id: str,
        limit: int,
        language: OperatorLanguage = OperatorLanguage.PYTHON,
        per_tuple_work_s: float = 1.0e-7,
    ) -> None:
        if limit < 0:
            raise InvalidWorkflow(f"limit {operator_id!r}: limit must be >= 0")
        super().__init__(operator_id, language, 1, per_tuple_work_s)
        self.limit = limit

    def required_input_columns(self, port, required_output=None):
        # Pure pass-through: whatever downstream needs, nothing more.
        return required_output

    def output_schema(self, input_schemas: Sequence[Schema]) -> Schema:
        (schema,) = input_schemas
        return schema

    def create_executor(self, worker_index: int = 0):
        return _LimitExecutor(self.limit)


class _DistinctExecutor(OperatorExecutor):
    def __init__(self, key: Optional[str]) -> None:
        super().__init__()
        self._key = key
        self._seen: Set = set()

    def process_tuple(self, row: Tuple, port: int) -> Iterable[Tuple]:
        witness = row[self._key] if self._key else tuple(row.values)
        if witness not in self._seen:
            self._seen.add(witness)
            yield row


class DistinctOperator(LogicalOperator):
    """Suppress duplicate rows (or duplicate values of one key field).

    Streaming: the first occurrence passes immediately.  With multiple
    workers the input is hash-partitioned (on the key, or the whole
    row via the engine's stable hashing) so duplicates meet at the same
    worker.
    """

    def __init__(
        self,
        operator_id: str,
        key: Optional[str] = None,
        language: OperatorLanguage = OperatorLanguage.PYTHON,
        num_workers: int = 1,
        per_tuple_work_s: float = 3.0e-7,
    ) -> None:
        super().__init__(operator_id, language, num_workers, per_tuple_work_s)
        self.key = key

    def partition_key(self, port: int) -> Optional[str]:
        return self.key

    def partition_strategy(self, port: int) -> str:
        # Whole-row distinct with multiple workers must still co-locate
        # duplicates; fall back to a single worker in that case via
        # validation below, so round-robin is fine here.
        return "hash" if self.key is not None else "round_robin"

    def output_schema(self, input_schemas: Sequence[Schema]) -> Schema:
        (schema,) = input_schemas
        if self.key is not None:
            schema.index_of(self.key)
        if self.key is None and self.num_workers > 1:
            raise InvalidWorkflow(
                f"distinct {self.operator_id!r}: whole-row distinct "
                "requires a single worker (pass key= for parallel distinct)"
            )
        return schema

    def create_executor(self, worker_index: int = 0):
        return _DistinctExecutor(self.key)


class _SampleExecutor(OperatorExecutor):
    def __init__(self, rate_denominator: int, key: Optional[str]) -> None:
        super().__init__()
        self._denominator = rate_denominator
        self._key = key
        self._counter = 0

    def process_tuple(self, row: Tuple, port: int) -> Iterable[Tuple]:
        if self._key is not None:
            keep = stable_hash(row[self._key]) % self._denominator == 0
        else:
            keep = self._counter % self._denominator == 0
            self._counter += 1
        if keep:
            yield row


class SampleOperator(LogicalOperator):
    """Keep a deterministic 1-in-N subset of the stream.

    With ``key`` set, sampling is by stable hash of that field (the
    same entities are kept run-to-run and across workers); without it,
    systematic sampling (every Nth row per worker).
    """

    def __init__(
        self,
        operator_id: str,
        one_in: int,
        key: Optional[str] = None,
        language: OperatorLanguage = OperatorLanguage.PYTHON,
        num_workers: int = 1,
        per_tuple_work_s: float = 2.0e-7,
    ) -> None:
        if one_in < 1:
            raise InvalidWorkflow(f"sample {operator_id!r}: one_in must be >= 1")
        super().__init__(operator_id, language, num_workers, per_tuple_work_s)
        self.one_in = one_in
        self.key = key

    def output_schema(self, input_schemas: Sequence[Schema]) -> Schema:
        (schema,) = input_schemas
        if self.key is not None:
            schema.index_of(self.key)
        return schema

    def create_executor(self, worker_index: int = 0):
        return _SampleExecutor(self.one_in, self.key)
