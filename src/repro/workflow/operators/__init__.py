"""The operator library (the Texera-like operator palette)."""

from repro.workflow.operators.aggregate import (
    AggregationFunction,
    GroupByOperator,
    SortOperator,
    TopKOperator,
)
from repro.workflow.operators.basic import (
    FilterOperator,
    FlatMapOperator,
    MapOperator,
    ProjectionOperator,
    UnionOperator,
)
from repro.workflow.operators.join import BUILD_PORT, PROBE_PORT, HashJoinOperator
from repro.workflow.operators.ml import (
    TRAIN_SUMMARY_SCHEMA,
    ModelApplyOperator,
    TrainOperator,
)
from repro.workflow.operators.sink import SinkOperator, VisualizationOperator
from repro.workflow.operators.stream import (
    DistinctOperator,
    LimitOperator,
    SampleOperator,
)
from repro.workflow.operators.sources import CsvSource, JsonlSource, TableSource

__all__ = [
    "AggregationFunction",
    "GroupByOperator",
    "SortOperator",
    "TopKOperator",
    "FilterOperator",
    "FlatMapOperator",
    "MapOperator",
    "ProjectionOperator",
    "UnionOperator",
    "BUILD_PORT",
    "PROBE_PORT",
    "HashJoinOperator",
    "TRAIN_SUMMARY_SCHEMA",
    "ModelApplyOperator",
    "TrainOperator",
    "DistinctOperator",
    "LimitOperator",
    "SampleOperator",
    "SinkOperator",
    "VisualizationOperator",
    "CsvSource",
    "JsonlSource",
    "TableSource",
]
