"""Source operators: where data enters a workflow."""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.errors import InvalidWorkflow
from repro.relational import Schema, Table, Tuple
from repro.workflow.language import OperatorLanguage
from repro.workflow.operator import LogicalOperator, SourceExecutor

__all__ = ["TableSource", "JsonlSource", "CsvSource"]


class _TableScanExecutor(SourceExecutor):
    def __init__(self, rows: Sequence[Tuple], per_tuple_cost_s: float) -> None:
        super().__init__()
        self._rows = rows
        self._per_tuple_cost_s = per_tuple_cost_s

    def produce(self) -> Iterable[Tuple]:
        for row in self._rows:
            self.charge(self._per_tuple_cost_s)
            yield row


class TableSource(LogicalOperator):
    """Scan an in-memory :class:`~repro.relational.Table`.

    With ``num_workers > 1`` the table is range-partitioned across the
    source's worker instances, as a parallel file scan would be.
    """

    def __init__(
        self,
        operator_id: str,
        table: Table,
        language: OperatorLanguage = OperatorLanguage.PYTHON,
        num_workers: int = 1,
        per_tuple_work_s: float = 1.0e-7,
    ) -> None:
        super().__init__(operator_id, language, num_workers, per_tuple_work_s)
        self.table = table

    @property
    def num_input_ports(self) -> int:
        return 0

    def output_schema(self, input_schemas: Sequence[Schema]) -> Schema:
        if input_schemas:
            raise InvalidWorkflow(f"source {self.operator_id!r} takes no inputs")
        return self.table.schema

    def create_executor(self, worker_index: int = 0):
        rows = self.table.rows[worker_index :: self.num_workers]
        return _TableScanExecutor(rows, self.tuple_cost_s())


class JsonlSource(TableSource):
    """Scan records parsed from JSONL content (Figure 9's source).

    ``schema`` names the fields to extract from each record; missing
    fields become None.
    """

    def __init__(
        self,
        operator_id: str,
        records: Iterable[dict],
        schema: Schema,
        language: OperatorLanguage = OperatorLanguage.PYTHON,
        num_workers: int = 1,
        per_tuple_work_s: float = 5.0e-7,
    ) -> None:
        table = Table.from_dicts(schema, records)
        super().__init__(
            operator_id, table, language, num_workers, per_tuple_work_s
        )


class CsvSource(TableSource):
    """Scan records parsed from CSV content (spreadsheet interchange).

    ``schema`` types the columns; parsing failures surface at
    construction time, before any virtual time is spent.
    """

    def __init__(
        self,
        operator_id: str,
        content: str,
        schema: Schema,
        language: OperatorLanguage = OperatorLanguage.PYTHON,
        num_workers: int = 1,
        per_tuple_work_s: float = 6.0e-7,
    ) -> None:
        from repro.storage.csvio import table_from_csv

        super().__init__(
            operator_id,
            table_from_csv(content, schema),
            language,
            num_workers,
            per_tuple_work_s,
        )
