"""Hash join operator (two input ports: 0 = build, 1 = probe).

Port 0 is consumed fully before port 1 (a pipeline-breaking phase for
the build side only); probing streams, so downstream operators start
receiving join output while the probe side is still flowing — the
pipelining the paper credits for Texera's DICE/KGE behaviour.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence

from repro.errors import InvalidWorkflow
from repro.relational import Schema, StreamingHashJoin, Tuple
from repro.workflow.language import OperatorLanguage
from repro.workflow.operator import LogicalOperator, OperatorExecutor

__all__ = ["HashJoinOperator", "BUILD_PORT", "PROBE_PORT"]

BUILD_PORT = 0
PROBE_PORT = 1


class _HashJoinExecutor(OperatorExecutor):
    def __init__(
        self,
        build_schema: Schema,
        probe_schema: Schema,
        build_key: str,
        probe_key: str,
        how: str,
        suffix: str,
    ) -> None:
        super().__init__()
        self._join = StreamingHashJoin(
            build_schema, probe_schema, build_key, probe_key, how=how, suffix=suffix
        )

    def process_tuple(self, row: Tuple, port: int) -> Iterable[Tuple]:
        if port == BUILD_PORT:
            # Build-side cost is charged by the engine through the
            # operator's port-aware tuple_cost_s.
            self._join.add_build_tuple(row)
            return ()
        return list(self._join.probe(row))

    def on_finish(self, port: int) -> Iterable[Tuple]:
        if port == BUILD_PORT:
            self._join.finish_build()
        return ()


class HashJoinOperator(LogicalOperator):
    """Equi-join; build side on port 0, probe side on port 1."""

    def __init__(
        self,
        operator_id: str,
        build_key: str,
        probe_key: str,
        how: str = "inner",
        suffix: str = "_right",
        language: OperatorLanguage = OperatorLanguage.PYTHON,
        num_workers: int = 1,
        per_tuple_work_s: float = 6.0e-7,
        build_extra_work_s: float = 2.0e-7,
        broadcast_build: bool = False,
    ) -> None:
        super().__init__(operator_id, language, num_workers, per_tuple_work_s)
        self.build_key = build_key
        self.probe_key = probe_key
        self.how = how
        self.suffix = suffix
        self.build_extra_work_s = build_extra_work_s
        #: Replicate the build side to every worker instead of hash
        #: partitioning both sides.  Pays build-side duplication to let
        #: the probe side round-robin (better balance under skew) —
        #: the classic broadcast-join trade-off.
        self.broadcast_build = broadcast_build
        self._schemas: Optional[Sequence[Schema]] = None

    @property
    def num_input_ports(self) -> int:
        return 2

    @property
    def consumes_ports_in_order(self) -> bool:
        return True

    def partition_key(self, port: int) -> Optional[str]:
        if self.broadcast_build:
            return None
        return self.build_key if port == BUILD_PORT else self.probe_key

    def partition_strategy(self, port: int) -> str:
        if self.broadcast_build:
            return "broadcast" if port == BUILD_PORT else "round_robin"
        return "hash"

    def tuple_cost_s(self, port: int = 0) -> float:
        """Build inserts are cheap; probes carry the declared work."""
        if port == BUILD_PORT:
            return self.language.tuple_cost(self.build_extra_work_s)
        return self.language.tuple_cost(self.per_tuple_work_s)

    def output_schema(self, input_schemas: Sequence[Schema]) -> Schema:
        build_schema, probe_schema = input_schemas
        if self.build_key not in build_schema:
            raise InvalidWorkflow(
                f"join {self.operator_id!r}: build key {self.build_key!r} "
                f"not in build schema {build_schema.names}"
            )
        if self.probe_key not in probe_schema:
            raise InvalidWorkflow(
                f"join {self.operator_id!r}: probe key {self.probe_key!r} "
                f"not in probe schema {probe_schema.names}"
            )
        self._schemas = list(input_schemas)
        return probe_schema.concat(build_schema, suffix=self.suffix)

    def create_executor(self, worker_index: int = 0):
        if self._schemas is None:
            raise InvalidWorkflow(
                f"join {self.operator_id!r}: output_schema must run before "
                "executor creation (compile the workflow first)"
            )
        build_schema, probe_schema = self._schemas
        return _HashJoinExecutor(
            build_schema,
            probe_schema,
            self.build_key,
            self.probe_key,
            self.how,
            self.suffix,
        )
