"""Compile a :class:`WorkflowSpec` into an executable :class:`Workflow`.

Resolution forms inside operator ``config`` values:

``{"$param": "name"}``
    Looked up in the ``bindings`` mapping supplied at load time — the
    escape hatch for runtime data (tables, datasets, measured costs)
    that has no JSON representation.
``{"$callable": "module:qualname"}``
    Imported by dotted path: the UDF escape hatch.  Mirrors how GUI
    systems reference user-defined functions from operator property
    panels.
``{"$schema": {"field": "type", ...}}``
    A :class:`repro.relational.Schema` literal; type strings are the
    :class:`FieldType` values (``int``/``float``/``string``/``bool``/
    ``any``).
``{"$predicate": {...}}``
    A declarative predicate tree built from the
    ``repro.relational.expressions`` combinators, e.g.
    ``{"op": "greater", "column": "score", "value": 0.5}`` or
    ``{"op": "all", "of": [...]}``.

After resolution the workflow is assembled in document order (operator
array order == insertion order, link array order == connection order),
so a spec-built plan is *physically identical* to the hand-built one —
the property the timing-pin tests rely on.
"""

from __future__ import annotations

import importlib
import json
from pathlib import Path
from typing import Any, Callable, Dict, Mapping, Optional, Union

from repro.errors import InvalidWorkflow, WorkflowSpecError
from repro.relational import (
    Field,
    FieldType,
    Predicate,
    Schema,
    all_of,
    any_of,
    column_equals,
    column_greater,
    column_in,
    column_is_not_null,
    column_less,
    column_not_equals,
    column_not_in,
    negate,
    udf_predicate,
)
from repro.workflow.dag import Workflow
from repro.workflow.language import OperatorLanguage
from repro.workflow.operator import LogicalOperator
from repro.workflow.spec.model import OperatorSpec, WorkflowSpec
from repro.workflow.spec.registry import operator_factory

__all__ = [
    "build_workflow",
    "load_workflow_file",
    "load_workflow_json",
    "read_spec",
    "resolve_value",
]

Bindings = Mapping[str, Any]


def _reject_constant(token: str) -> Any:
    # Python's json module *accepts* the non-standard NaN/Infinity
    # tokens by default, which would let a broken document round-trip
    # silently; the spec grammar is strict JSON.
    raise WorkflowSpecError(
        f"non-standard JSON token {token!r}: non-finite floats have no "
        f"JSON representation in a workflow spec"
    )


def _parse_spec_text(text: str, where: str) -> Any:
    try:
        return json.loads(text, parse_constant=_reject_constant)
    except json.JSONDecodeError as exc:
        raise WorkflowSpecError(
            f"workflow spec {where}is not valid JSON: {exc}"
        ) from exc


def read_spec(source: Union[str, Path]) -> WorkflowSpec:
    """Read and parse a spec from a JSON file path."""
    path = Path(source)
    try:
        text = path.read_text(encoding="utf-8")
    except OSError as exc:
        raise WorkflowSpecError(f"cannot read workflow spec {path}: {exc}") from exc
    return WorkflowSpec.from_json(_parse_spec_text(text, f"{path} "))


def load_workflow_json(
    doc: Union[str, Dict[str, Any]], bindings: Optional[Bindings] = None
) -> Workflow:
    """Build a workflow from a JSON document (dict or text)."""
    if isinstance(doc, str):
        doc = _parse_spec_text(doc, "")
    return build_workflow(WorkflowSpec.from_json(doc), bindings)


def load_workflow_file(
    source: Union[str, Path], bindings: Optional[Bindings] = None
) -> Workflow:
    """Build a workflow from a spec file."""
    return build_workflow(read_spec(source), bindings)


def build_workflow(
    spec: WorkflowSpec, bindings: Optional[Bindings] = None
) -> Workflow:
    """Instantiate operators and links in document order.

    Raises :class:`WorkflowSpecError` on resolution/construction
    problems and lets :class:`InvalidWorkflow` (ports, duplicate ids,
    cycles, schemas) surface with the operator-level diagnostics the
    DAG layer already produces.
    """
    bindings = bindings or {}
    workflow = Workflow(spec.name)
    for op_spec in spec.operators:
        workflow.add_operator(_instantiate(op_spec, bindings))
    for link in spec.links:
        workflow.link(
            workflow.operators[link.producer_id],
            workflow.operators[link.consumer_id],
            output_port=link.output_port,
            input_port=link.input_port,
        )
    return workflow


def _instantiate(op_spec: OperatorSpec, bindings: Bindings) -> LogicalOperator:
    factory = operator_factory(op_spec.type)
    where = f"operator {op_spec.operator_id!r} ({op_spec.type})"
    config = {
        key: resolve_value(value, bindings, f"{where}.{key}")
        for key, value in op_spec.config.items()
    }
    batch_size = config.pop("output_batch_size", None)
    language = config.get("language")
    if isinstance(language, str):
        try:
            config["language"] = OperatorLanguage(language)
        except ValueError:
            valid = sorted(lang.value for lang in OperatorLanguage)
            raise WorkflowSpecError(
                f"{where}: unknown language {language!r} (valid: {valid})"
            ) from None
    try:
        operator = factory(op_spec.operator_id, **config)
    except InvalidWorkflow:
        raise  # operator constructors already produce scoped messages
    except TypeError as exc:
        raise WorkflowSpecError(f"{where}: bad config: {exc}") from exc
    if batch_size is not None:
        operator.with_output_batch_size(batch_size)
    return operator


# -- value resolution ----------------------------------------------------------


def resolve_value(value: Any, bindings: Bindings, context: str) -> Any:
    """Recursively resolve ``$param``/``$callable``/``$schema``/``$predicate``."""
    if isinstance(value, dict):
        if "$param" in value:
            return _resolve_param(value, bindings, context)
        if "$callable" in value:
            return _resolve_callable(value, context)
        if "$schema" in value:
            return _resolve_schema(value, context)
        if "$predicate" in value:
            return _resolve_predicate_form(value, context)
        return {
            key: resolve_value(item, bindings, f"{context}.{key}")
            for key, item in value.items()
        }
    if isinstance(value, list):
        return [
            resolve_value(item, bindings, f"{context}[{i}]")
            for i, item in enumerate(value)
        ]
    return value


def _single_key(value: Dict[str, Any], key: str, context: str) -> Any:
    if set(value) != {key}:
        raise WorkflowSpecError(
            f"{context}: {{'{key}': ...}} must be the only key, "
            f"got keys {sorted(value)}"
        )
    return value[key]


def _resolve_param(value: Dict[str, Any], bindings: Bindings, context: str) -> Any:
    name = _single_key(value, "$param", context)
    if not isinstance(name, str):
        raise WorkflowSpecError(
            f"{context}: $param name must be a string, got {name!r}"
        )
    if name not in bindings:
        raise WorkflowSpecError(
            f"{context}: unbound $param {name!r} "
            f"(bound: {sorted(bindings)})"
        )
    return bindings[name]


def _resolve_callable(value: Dict[str, Any], context: str) -> Callable[..., Any]:
    ref = _single_key(value, "$callable", context)
    return import_callable(ref, context)


def import_callable(ref: Any, context: str) -> Callable[..., Any]:
    """Import ``module:qualname`` and require the result be callable."""
    if not isinstance(ref, str) or ":" not in ref:
        raise WorkflowSpecError(
            f"{context}: $callable must be a 'module:qualname' string, "
            f"got {ref!r}"
        )
    module_name, _, qualname = ref.partition(":")
    try:
        target: Any = importlib.import_module(module_name)
    except ImportError as exc:
        raise WorkflowSpecError(
            f"{context}: cannot import module {module_name!r}: {exc}"
        ) from exc
    for part in qualname.split("."):
        try:
            target = getattr(target, part)
        except AttributeError:
            raise WorkflowSpecError(
                f"{context}: module {module_name!r} has no attribute "
                f"{qualname!r}"
            ) from None
    if not callable(target):
        raise WorkflowSpecError(f"{context}: {ref!r} is not callable")
    return target


def _resolve_schema(value: Dict[str, Any], context: str) -> Schema:
    doc = _single_key(value, "$schema", context)
    if not isinstance(doc, dict) or not doc:
        raise WorkflowSpecError(
            f"{context}: $schema must be a non-empty object of "
            f"field -> type, got {doc!r}"
        )
    fields = []
    for name, type_name in doc.items():
        try:
            ftype = FieldType(type_name)
        except ValueError:
            valid = sorted(t.value for t in FieldType)
            raise WorkflowSpecError(
                f"{context}: field {name!r} has unknown type {type_name!r} "
                f"(valid: {valid})"
            ) from None
        fields.append(Field(name, ftype))
    return Schema(fields)


#: Leaf predicate builders: op name -> (builder, required value key).
_PREDICATE_LEAVES = {
    "equals": (column_equals, "value"),
    "not_equals": (column_not_equals, "value"),
    "in": (column_in, "values"),
    "not_in": (column_not_in, "values"),
    "greater": (column_greater, "value"),
    "less": (column_less, "value"),
}


def _resolve_predicate_form(value: Dict[str, Any], context: str) -> Predicate:
    doc = _single_key(value, "$predicate", context)
    return _build_predicate(doc, context)


def _build_predicate(doc: Any, context: str) -> Predicate:
    if not isinstance(doc, dict) or "op" not in doc:
        raise WorkflowSpecError(
            f"{context}: $predicate must be an object with an 'op' key, "
            f"got {doc!r}"
        )
    op = doc["op"]
    if op in _PREDICATE_LEAVES:
        builder, value_key = _PREDICATE_LEAVES[op]
        _check_keys(doc, {"op", "column", value_key}, context)
        return builder(_column_of(doc, context), doc.get(value_key))
    if op == "is_not_null":
        _check_keys(doc, {"op", "column"}, context)
        return column_is_not_null(_column_of(doc, context))
    if op == "all" or op == "any":
        _check_keys(doc, {"op", "of"}, context)
        parts = doc.get("of")
        if not isinstance(parts, list):
            raise WorkflowSpecError(
                f"{context}: predicate {op!r} needs a list under 'of'"
            )
        built = [
            _build_predicate(part, f"{context}.of[{i}]")
            for i, part in enumerate(parts)
        ]
        return all_of(built) if op == "all" else any_of(built)
    if op == "not":
        _check_keys(doc, {"op", "of"}, context)
        return negate(_build_predicate(doc.get("of"), f"{context}.of"))
    if op == "udf":
        _check_keys(doc, {"op", "fn", "description"}, context)
        fn = import_callable(doc.get("fn"), f"{context}.fn")
        return udf_predicate(fn, doc.get("description", "udf"))
    known = sorted([*_PREDICATE_LEAVES, "is_not_null", "all", "any", "not", "udf"])
    raise WorkflowSpecError(
        f"{context}: unknown predicate op {op!r} (valid: {known})"
    )


def _column_of(doc: Dict[str, Any], context: str) -> str:
    column = doc.get("column")
    if not isinstance(column, str) or not column:
        raise WorkflowSpecError(
            f"{context}: predicate {doc.get('op')!r} needs a 'column' "
            f"string, got {column!r}"
        )
    return column


def _check_keys(doc: Dict[str, Any], allowed: set, context: str) -> None:
    unknown = sorted(set(doc) - allowed)
    if unknown:
        raise WorkflowSpecError(
            f"{context}: predicate {doc.get('op')!r} has unknown keys "
            f"{unknown} (allowed: {sorted(allowed)})"
        )
