"""Operator-type registry: spec ``type`` strings -> logical operators.

Maps the grammar's operator types onto the existing
``repro.workflow.operators`` classes, mirroring how the Texera editor
maps palette entries onto operator implementations.  Task packages may
register their own types (the KGE stage operator and the WEF ensemble
trainer do) so domain operators are spec-addressable without living in
the core palette.

A factory is called as ``factory(operator_id, **config)`` with the
config already resolved by the loader; generic keys (``language``,
``output_batch_size``) are normalized by the loader before the call.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.errors import WorkflowSpecError
from repro.workflow.operator import LogicalOperator
from repro.workflow.operators import (
    CsvSource,
    DistinctOperator,
    FilterOperator,
    FlatMapOperator,
    GroupByOperator,
    HashJoinOperator,
    JsonlSource,
    LimitOperator,
    MapOperator,
    ModelApplyOperator,
    ProjectionOperator,
    SampleOperator,
    SinkOperator,
    SortOperator,
    TableSource,
    TopKOperator,
    TrainOperator,
    UnionOperator,
    VisualizationOperator,
)
from repro.workflow.operators.aggregate import AggregationFunction

__all__ = [
    "operator_factory",
    "operator_types",
    "register_operator_type",
]

OperatorFactory = Callable[..., LogicalOperator]

_REGISTRY: Dict[str, OperatorFactory] = {}


def register_operator_type(
    name: str, factory: OperatorFactory, replace: bool = False
) -> None:
    """Register (or with ``replace=True`` override) an operator type."""
    if not name or not isinstance(name, str):
        raise WorkflowSpecError(
            f"operator type name must be a non-empty string, got {name!r}"
        )
    if name in _REGISTRY and not replace:
        raise WorkflowSpecError(f"operator type {name!r} is already registered")
    _REGISTRY[name] = factory


def operator_factory(name: str) -> OperatorFactory:
    """Look up a registered factory; unknown types name the catalogue."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise WorkflowSpecError(
            f"unknown operator type {name!r} "
            f"(registered types: {operator_types()})"
        ) from None


def operator_types() -> List[str]:
    """Sorted names of every registered operator type."""
    return sorted(_REGISTRY)


def _group_by(operator_id: str, aggregation, **config) -> GroupByOperator:
    if isinstance(aggregation, str):
        try:
            aggregation = AggregationFunction(aggregation)
        except ValueError:
            valid = sorted(a.value for a in AggregationFunction)
            raise WorkflowSpecError(
                f"group_by {operator_id!r}: unknown aggregation "
                f"{aggregation!r} (valid: {valid})"
            ) from None
    return GroupByOperator(operator_id, aggregation=aggregation, **config)


#: The built-in palette.  Keys are the grammar's ``type`` strings.
_BUILTINS: Dict[str, OperatorFactory] = {
    "table_source": TableSource,
    "csv_source": CsvSource,
    "jsonl_source": JsonlSource,
    "filter": FilterOperator,
    "projection": ProjectionOperator,
    "map": MapOperator,
    "flat_map": FlatMapOperator,
    "union": UnionOperator,
    "hash_join": HashJoinOperator,
    "group_by": _group_by,
    "sort": SortOperator,
    "top_k": TopKOperator,
    "limit": LimitOperator,
    "distinct": DistinctOperator,
    "sample": SampleOperator,
    "sink": SinkOperator,
    "visualization": VisualizationOperator,
    "model_apply": ModelApplyOperator,
    "train": TrainOperator,
}

for _name, _factory in _BUILTINS.items():
    register_operator_type(_name, _factory)
