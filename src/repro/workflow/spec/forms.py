"""Authoring helpers: build the grammar's resolution forms from Python.

The task packages generate their canonical spec documents with these
helpers (and the committed ``examples/workflows/*.json`` files are the
serialized output), so the JSON stays in lockstep with the Python-side
schemas, cost constants and named functions.
"""

from __future__ import annotations

from typing import Any, Callable, Dict

from repro.relational import Schema

__all__ = ["callable_form", "param_form", "schema_form", "udf_predicate_form"]


def param_form(name: str) -> Dict[str, Any]:
    """``{"$param": name}`` — bound at load time."""
    return {"$param": name}


def callable_form(fn: Callable[..., Any]) -> Dict[str, Any]:
    """``{"$callable": "module:qualname"}`` for a module-level function."""
    return {"$callable": f"{fn.__module__}:{fn.__qualname__}"}


def schema_form(schema: Schema) -> Dict[str, Any]:
    """``{"$schema": {field: type, ...}}`` for a schema literal."""
    return {"$schema": {f.name: f.ftype.value for f in schema.fields}}


def udf_predicate_form(fn: Callable[..., Any], description: str) -> Dict[str, Any]:
    """``{"$predicate": {"op": "udf", ...}}`` wrapping a named function."""
    return {
        "$predicate": {
            "op": "udf",
            "fn": f"{fn.__module__}:{fn.__qualname__}",
            "description": description,
        }
    }
