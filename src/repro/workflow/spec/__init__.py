"""Workflow-as-data: the versioned JSON spec layer.

The paper's GUI paradigm treats a pipeline as *data* — a typed
operator DAG validated before execution — while scripts are code.
This package makes that distinction concrete for the reproduction:

* :mod:`model` — the ``repro/workflow-spec@1`` grammar with
  ``to_json``/``from_json`` round-tripping and structural validation;
* :mod:`registry` — operator-type names mapped onto the palette in
  ``repro.workflow.operators`` (task packages register custom types);
* :mod:`loader` — ``$param``/``$callable``/``$schema``/``$predicate``
  resolution and document-order workflow assembly.

One spec document compiles to both paradigms: :func:`build_workflow`
here for the Texera-like engine, and
:func:`repro.rayx.compile.compile_script_plan` for the Ray-like script
runtime.
"""

from repro.workflow.spec.forms import (
    callable_form,
    param_form,
    schema_form,
    udf_predicate_form,
)
from repro.workflow.spec.loader import (
    build_workflow,
    import_callable,
    load_workflow_file,
    load_workflow_json,
    read_spec,
    resolve_value,
)
from repro.workflow.spec.model import (
    SPEC_VERSION,
    LinkSpec,
    OperatorSpec,
    WorkflowSpec,
    dump_spec_doc,
)
from repro.workflow.spec.registry import (
    operator_factory,
    operator_types,
    register_operator_type,
)

__all__ = [
    "SPEC_VERSION",
    "LinkSpec",
    "OperatorSpec",
    "WorkflowSpec",
    "build_workflow",
    "callable_form",
    "dump_spec_doc",
    "import_callable",
    "param_form",
    "schema_form",
    "udf_predicate_form",
    "load_workflow_file",
    "load_workflow_json",
    "operator_factory",
    "operator_types",
    "read_spec",
    "register_operator_type",
    "resolve_value",
]
