"""The versioned JSON grammar for workflow specs.

A workflow spec is *data*: the paper's GUI paradigm treats a pipeline
as a typed operator DAG that is edited, validated and stored before it
is ever executed (Section III-A), in contrast to scripts, which are
code.  This module defines the document shape and the structural checks
that run without instantiating a single operator — the analogue of what
the Texera editor enforces while the user is still dragging boxes.

Grammar (version ``repro/workflow-spec@1``)::

    {
      "spec": "repro/workflow-spec@1",
      "name": "<workflow name>",
      "operators": [
        {"id": "<unique id>", "type": "<registry type>", "config": {...}},
        ...
      ],
      "links": [
        {"from": "<producer id>", "to": "<consumer id>", "out": 0, "in": 0},
        ...
      ]
    }

``config`` values may embed resolution forms handled by the loader:
``{"$param": name}`` (runtime binding), ``{"$callable": "mod:qual"}``
(imported function), ``{"$schema": {field: type, ...}}`` (schema
literal) and ``{"$predicate": {...}}`` (declarative predicate tree).

Array order is semantic: operators are added and links connected in
document order, which reproduces the exact physical plan (and therefore
the bit-identical virtual timings) of the hand-assembled builders.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Tuple

from repro.errors import WorkflowSpecError

__all__ = [
    "SPEC_VERSION",
    "LinkSpec",
    "OperatorSpec",
    "WorkflowSpec",
    "dump_spec_doc",
]

#: The one grammar version this build reads and writes.
SPEC_VERSION = "repro/workflow-spec@1"

_OPERATOR_KEYS = {"id", "type", "config"}
_LINK_KEYS = {"from", "to", "out", "in"}


def dump_spec_doc(doc: Any, indent: int = 2) -> str:
    """Serialize a spec document to JSON text, *strictly*.

    ``json.dumps`` would otherwise emit the non-standard ``NaN`` /
    ``Infinity`` tokens for non-finite float config values — invalid
    JSON that other parsers (and this module's own :func:`read_spec`)
    reject.  Serialization errors surface as scoped
    :class:`WorkflowSpecError`\\ s so the CLI exits 2 with the grammar
    instead of a traceback.  ``ensure_ascii=False`` keeps non-ASCII
    operator ids byte-for-byte intact (the round-trip contract).
    """
    try:
        return json.dumps(doc, indent=indent, allow_nan=False, ensure_ascii=False)
    except ValueError as exc:
        raise WorkflowSpecError(
            "workflow spec contains non-finite float values (NaN/Infinity), "
            f"which have no JSON representation: {exc}"
        ) from exc
    except TypeError as exc:
        raise WorkflowSpecError(
            f"workflow spec contains values with no JSON representation: {exc}"
        ) from exc


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise WorkflowSpecError(message)


@dataclass(frozen=True)
class OperatorSpec:
    """One operator declaration: id, registry type, raw configuration."""

    operator_id: str
    type: str
    config: Dict[str, Any] = field(default_factory=dict)

    def to_json(self) -> Dict[str, Any]:
        return {"id": self.operator_id, "type": self.type, "config": self.config}

    @classmethod
    def from_json(cls, doc: Any, position: int) -> "OperatorSpec":
        where = f"operators[{position}]"
        _require(isinstance(doc, dict), f"{where}: expected an object, got {doc!r}")
        unknown = sorted(set(doc) - _OPERATOR_KEYS)
        _require(
            not unknown,
            f"{where}: unknown keys {unknown} (allowed: id, type, config)",
        )
        operator_id = doc.get("id")
        _require(
            isinstance(operator_id, str) and bool(operator_id),
            f"{where}: 'id' must be a non-empty string, got {operator_id!r}",
        )
        op_type = doc.get("type")
        _require(
            isinstance(op_type, str) and bool(op_type),
            f"{where} ({operator_id!r}): 'type' must be a non-empty string, "
            f"got {op_type!r}",
        )
        config = doc.get("config", {})
        _require(
            isinstance(config, dict),
            f"{where} ({operator_id!r}): 'config' must be an object, "
            f"got {config!r}",
        )
        return cls(operator_id, op_type, config)


@dataclass(frozen=True)
class LinkSpec:
    """One directed edge: producer output port -> consumer input port."""

    producer_id: str
    consumer_id: str
    output_port: int = 0
    input_port: int = 0

    def to_json(self) -> Dict[str, Any]:
        return {
            "from": self.producer_id,
            "to": self.consumer_id,
            "out": self.output_port,
            "in": self.input_port,
        }

    @classmethod
    def from_json(cls, doc: Any, position: int) -> "LinkSpec":
        where = f"links[{position}]"
        _require(isinstance(doc, dict), f"{where}: expected an object, got {doc!r}")
        unknown = sorted(set(doc) - _LINK_KEYS)
        _require(
            not unknown,
            f"{where}: unknown keys {unknown} (allowed: from, to, out, in)",
        )
        for key in ("from", "to"):
            value = doc.get(key)
            _require(
                isinstance(value, str) and bool(value),
                f"{where}: {key!r} must be a non-empty string, got {value!r}",
            )
        for key in ("out", "in"):
            value = doc.get(key, 0)
            _require(
                isinstance(value, int) and not isinstance(value, bool)
                and value >= 0,
                f"{where} ({doc['from']} -> {doc['to']}): {key!r} must be a "
                f"non-negative integer port, got {value!r}",
            )
        return cls(doc["from"], doc["to"], doc.get("out", 0), doc.get("in", 0))


@dataclass(frozen=True)
class WorkflowSpec:
    """A full workflow document: name + ordered operators + ordered links."""

    name: str
    operators: Tuple[OperatorSpec, ...]
    links: Tuple[LinkSpec, ...]
    version: str = SPEC_VERSION

    # -- serialization ---------------------------------------------------------

    def to_json(self) -> Dict[str, Any]:
        """The canonical JSON document (round-trips via :meth:`from_json`)."""
        return {
            "spec": self.version,
            "name": self.name,
            "operators": [op.to_json() for op in self.operators],
            "links": [link.to_json() for link in self.links],
        }

    def to_json_text(self, indent: int = 2) -> str:
        """The canonical document as strict JSON text.

        Non-finite floats raise a scoped :class:`WorkflowSpecError`
        (see :func:`dump_spec_doc`); non-ASCII operator ids round-trip
        losslessly.
        """
        return dump_spec_doc(self.to_json(), indent=indent)

    @classmethod
    def from_json(cls, doc: Any) -> "WorkflowSpec":
        """Parse and structurally validate a spec document."""
        _require(
            isinstance(doc, dict),
            f"workflow spec must be a JSON object, got {type(doc).__name__}",
        )
        version = doc.get("spec")
        _require(
            version == SPEC_VERSION,
            f"unsupported spec version {version!r} (this build reads "
            f"{SPEC_VERSION!r})",
        )
        unknown = sorted(set(doc) - {"spec", "name", "operators", "links"})
        _require(
            not unknown,
            f"unknown top-level keys {unknown} "
            f"(allowed: spec, name, operators, links)",
        )
        name = doc.get("name")
        _require(
            isinstance(name, str) and bool(name),
            f"'name' must be a non-empty string, got {name!r}",
        )
        raw_operators = doc.get("operators")
        _require(
            isinstance(raw_operators, list) and bool(raw_operators),
            "'operators' must be a non-empty array",
        )
        raw_links = doc.get("links", [])
        _require(isinstance(raw_links, list), "'links' must be an array")
        operators = tuple(
            OperatorSpec.from_json(op, i) for i, op in enumerate(raw_operators)
        )
        links = tuple(
            LinkSpec.from_json(link, i) for i, link in enumerate(raw_links)
        )
        spec = cls(name, operators, links, version)
        spec.validate_structure()
        return spec

    # -- structural validation -------------------------------------------------

    def validate_structure(self) -> None:
        """Spec-level DAG checks that need no operator instances.

        Port-range and schema checks require instantiation and run in
        the loader via ``Workflow``'s own validation; everything below
        is catchable while the document is still pure data.
        """
        ids: Dict[str, int] = {}
        for position, op in enumerate(self.operators):
            _require(
                op.operator_id not in ids,
                f"duplicate operator id {op.operator_id!r} "
                f"(operators[{ids.get(op.operator_id)}] and "
                f"operators[{position}])",
            )
            ids[op.operator_id] = position
        taken: Dict[Tuple[str, int], LinkSpec] = {}
        for position, link in enumerate(self.links):
            for endpoint, key in ((link.producer_id, "from"), (link.consumer_id, "to")):
                _require(
                    endpoint in ids,
                    f"links[{position}]: {key!r} references unknown operator "
                    f"{endpoint!r} (declared: {sorted(ids)})",
                )
            slot = (link.consumer_id, link.input_port)
            _require(
                slot not in taken,
                f"links[{position}]: duplicate link into input port "
                f"{link.input_port} of operator {link.consumer_id!r} "
                f"(already fed by {taken.get(slot)!r})",
            )
            taken[slot] = link
        self._check_acyclic()

    def _check_acyclic(self) -> None:
        indegree = {op.operator_id: 0 for op in self.operators}
        outgoing: Dict[str, List[str]] = {op.operator_id: [] for op in self.operators}
        for link in self.links:
            indegree[link.consumer_id] += 1
            outgoing[link.producer_id].append(link.consumer_id)
        ready = sorted(op_id for op_id, deg in indegree.items() if deg == 0)
        seen = 0
        while ready:
            op_id = ready.pop(0)
            seen += 1
            for consumer in outgoing[op_id]:
                indegree[consumer] -= 1
                if indegree[consumer] == 0:
                    ready.append(consumer)
            ready.sort()
        if seen != len(self.operators):
            stuck = sorted(op_id for op_id, deg in indegree.items() if deg > 0)
            raise WorkflowSpecError(
                f"workflow spec contains a cycle involving operators {stuck}"
            )

    # -- queries ---------------------------------------------------------------

    def params(self) -> List[str]:
        """Sorted ``$param`` names referenced anywhere in the configs."""
        names = set()
        for op in self.operators:
            for name in _walk_params(op.config):
                names.add(name)
        return sorted(names)

    def operator(self, operator_id: str) -> OperatorSpec:
        for op in self.operators:
            if op.operator_id == operator_id:
                return op
        raise WorkflowSpecError(
            f"spec has no operator {operator_id!r} "
            f"(declared: {[o.operator_id for o in self.operators]})"
        )


def _walk_params(value: Any) -> Iterator[str]:
    if isinstance(value, dict):
        if set(value) == {"$param"} and isinstance(value["$param"], str):
            yield value["$param"]
            return
        for item in value.values():
            yield from _walk_params(item)
    elif isinstance(value, list):
        for item in value:
            yield from _walk_params(item)
