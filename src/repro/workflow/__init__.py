"""Workflow-paradigm engine (Texera-like): DAGs of operators executed
with pipelined, batched, multi-worker dataflow on the simulated cluster.

Substitute for the paper's Texera deployment; see DESIGN.md section 2.

Quick tour::

    from repro.cluster import build_cluster
    from repro.sim import Environment
    from repro.workflow import Workflow, run_workflow
    from repro.workflow.operators import TableSource, FilterOperator, SinkOperator

    wf = Workflow("demo")
    source = wf.add_operator(TableSource("scan", table))
    keep = wf.add_operator(FilterOperator("keep", predicate))
    sink = wf.add_operator(SinkOperator("results"))
    wf.link(source, keep)
    wf.link(keep, sink)

    result = run_workflow(build_cluster(Environment()), wf)
    result.table()            # collected rows
    result.progress.describe()  # Figure 9-style operator board
"""

from repro.workflow.dag import Link, Workflow
from repro.workflow.engine import WorkflowController, WorkflowResult, run_workflow
from repro.workflow.language import OperatorLanguage
from repro.workflow.operator import LogicalOperator, OperatorExecutor, SourceExecutor
from repro.workflow.partitioning import (
    BroadcastPartitioner,
    HashPartitioner,
    Partitioner,
    RoundRobinPartitioner,
    stable_hash,
)
from repro.workflow.progress import OperatorProgress, OperatorState, ProgressTracker

__all__ = [
    "Link",
    "Workflow",
    "WorkflowController",
    "WorkflowResult",
    "run_workflow",
    "OperatorLanguage",
    "LogicalOperator",
    "OperatorExecutor",
    "SourceExecutor",
    "BroadcastPartitioner",
    "HashPartitioner",
    "Partitioner",
    "RoundRobinPartitioner",
    "stable_hash",
    "OperatorProgress",
    "OperatorState",
    "ProgressTracker",
]
