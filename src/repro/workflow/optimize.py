"""Logical optimization passes over a workflow DAG.

The paper's GUI paradigm compiles a declarative operator graph, which
is exactly what makes *logical optimization* possible — a freedom the
script paradigm gives up by encoding the plan in imperative Python.
This module implements three rule passes that run between the spec
layer and the engine's physical plan:

``prune_dead_columns``
    Dead-column elimination: a backward pass propagates the column
    sets operators actually read (declarative predicates and
    projections know theirs; UDFs report "unknown" and block the
    pass), then inserts :class:`ProjectionOperator`s on links where
    the requirement is a strict subset of the flowing schema —
    shrinking every downstream batch, encode and transfer.

``fuse_adjacent``
    Operator fusion: maximal linear chains of same-language,
    same-parallelism, one-in/one-out operators collapse into a single
    :class:`FusedOperator`.  One physical instance then charges all
    the chained per-tuple costs, and the inter-operator channel —
    encode, per-batch handling, decode, transfer — disappears
    entirely.

``placement_groups``
    Language-aware co-location: operators joined by a cross-language
    link are grouped, and the engine hands the group label to
    ``repro.sched`` as a ``colocate_key`` so the scheduler pins the
    group onto one node — the serialization *boundary* still pays the
    codec, but the placement-dependent network transfer on the
    paper's KGE pain-point edges (Python<->Scala) goes away.

All passes are opt-in (``WorkflowConfig.optimize``, default False):
with the optimizer off, compiled plans execute bit-identically to the
hand-built seed plans — pinned by the timing-regression suite.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence

from repro.relational import Schema, Tuple
from repro.workflow.dag import Link, Workflow
from repro.workflow.operator import LogicalOperator, OperatorExecutor
from repro.workflow.operators import ProjectionOperator

__all__ = [
    "FusedOperator",
    "fuse_adjacent",
    "optimize_workflow",
    "placement_groups",
    "prune_dead_columns",
]


# -- fusion --------------------------------------------------------------------


class _FusedExecutor(OperatorExecutor):
    """Runs a chain of sub-executors inside one physical instance.

    The engine's consumer loop charges the *head* operator's per-tuple
    cost (``FusedOperator.tuple_cost_s``); this executor charges each
    inner stage's per-tuple cost for every row entering that stage, so
    the fused instance pays exactly the compute the split operators
    paid — minus the channel costs between them.
    """

    def __init__(
        self, executors: Sequence[OperatorExecutor], stage_costs: Sequence[float]
    ) -> None:
        super().__init__()
        self._executors = list(executors)
        self._stage_costs = list(stage_costs)

    def _drain(self, executor: OperatorExecutor) -> None:
        seconds, flops = executor.pending.take()
        self.pending.seconds += seconds
        self.pending.flops += flops

    def open(self) -> None:
        for executor in self._executors:
            executor.open()
            self._drain(executor)

    def _through_stage(
        self, index: int, rows: Iterable[Tuple], port: int
    ) -> List[Tuple]:
        executor = self._executors[index]
        stage_port = port if index == 0 else 0
        out: List[Tuple] = []
        for row in rows:
            if index > 0:
                self.pending.seconds += self._stage_costs[index]
            out.extend(executor.process_tuple(row, stage_port))
            self._drain(executor)
        return out

    def process_tuple(self, row: Tuple, port: int) -> Iterable[Tuple]:
        rows: List[Tuple] = [row]
        for index in range(len(self._executors)):
            rows = self._through_stage(index, rows, port)
            if not rows:
                return ()
        return rows

    def on_finish(self, port: int) -> Iterable[Tuple]:
        rows: List[Tuple] = []
        for index, executor in enumerate(self._executors):
            rows = self._through_stage(index, rows, port) if rows else []
            rows.extend(executor.on_finish(port if index == 0 else 0))
            self._drain(executor)
        return rows

    def close(self) -> None:
        for executor in self._executors:
            executor.close()
            self._drain(executor)


class FusedOperator(LogicalOperator):
    """A maximal linear chain of operators fused into one.

    Head properties (language, parallelism, partitioning, engine-side
    per-tuple cost) come from the first operator; the output batch
    size comes from the last (it governs the fused operator's
    outbound channels).
    """

    def __init__(self, chain: Sequence[LogicalOperator]) -> None:
        if len(chain) < 2:
            raise ValueError("fusion needs at least two operators")
        head, tail = chain[0], chain[-1]
        super().__init__(
            "+".join(op.operator_id for op in chain),
            head.language,
            num_workers=head.num_workers,
            per_tuple_work_s=head.per_tuple_work_s,
            framework_cores=head.framework_cores,
            output_batch_size=tail.output_batch_size,
        )
        self.chain = tuple(chain)

    @property
    def is_blocking(self) -> bool:
        return any(op.is_blocking for op in self.chain)

    def partition_key(self, port: int) -> Optional[str]:
        return self.chain[0].partition_key(port)

    def partition_strategy(self, port: int) -> str:
        return self.chain[0].partition_strategy(port)

    def tuple_cost_s(self, port: int = 0) -> float:
        return self.chain[0].tuple_cost_s(port)

    def required_input_columns(self, port, required_output=None):
        required = required_output
        for op in reversed(self.chain):
            required = op.required_input_columns(0, required)
        return required

    def output_schema(self, input_schemas: Sequence[Schema]) -> Schema:
        schema = self.chain[0].output_schema(input_schemas)
        for op in self.chain[1:]:
            schema = op.output_schema([schema])
        return schema

    def create_executor(self, worker_index: int = 0) -> OperatorExecutor:
        return _FusedExecutor(
            [op.create_executor(worker_index) for op in self.chain],
            [op.tuple_cost_s(0) for op in self.chain],
        )


def _linear(workflow: Workflow, operator: LogicalOperator) -> bool:
    """One-in/one-out, not an endpoint of the DAG."""
    return (
        not operator.is_source
        and not operator.is_sink
        and operator.num_input_ports == 1
        and operator.num_output_ports == 1
    )


def _fusable(workflow: Workflow, link: Link) -> bool:
    producer = workflow.operators[link.producer_id]
    consumer = workflow.operators[link.consumer_id]
    if not _linear(workflow, producer) or not _linear(workflow, consumer):
        return False
    if len(workflow.out_links(producer.operator_id)) != 1:
        return False
    if len(workflow.in_links(consumer.operator_id)) != 1:
        return False
    if producer.language != consumer.language:
        return False
    if producer.num_workers != consumer.num_workers:
        return False
    if producer.framework_cores != consumer.framework_cores:
        return False
    # A multi-worker consumer that hash-partitions its input routes
    # rows by key; fusing would pin each row to its producer's worker.
    if consumer.num_workers > 1 and consumer.partition_key(0) is not None:
        return False
    return True


def fuse_adjacent(workflow: Workflow) -> Workflow:
    """Collapse fusable linear chains into :class:`FusedOperator`s."""
    fusable = {
        (link.producer_id, link.consumer_id)
        for link in workflow.links
        if _fusable(workflow, link)
    }
    if not fusable:
        return _rebuild(workflow, {}, ())
    next_of = {producer: consumer for producer, consumer in fusable}
    has_fused_in = {consumer for _, consumer in fusable}
    chains: List[List[str]] = []
    for operator in workflow.topological_order():
        op_id = operator.operator_id
        if op_id in has_fused_in or op_id not in next_of:
            continue
        chain = [op_id]
        while chain[-1] in next_of:
            chain.append(next_of[chain[-1]])
        chains.append(chain)
    replacements: Dict[str, LogicalOperator] = {}
    dropped_links = set()
    for chain in chains:
        fused = FusedOperator([workflow.operators[op_id] for op_id in chain])
        for op_id in chain:
            replacements[op_id] = fused
        for producer, consumer in zip(chain, chain[1:]):
            dropped_links.add((producer, consumer))
    return _rebuild(workflow, replacements, dropped_links)


def _rebuild(
    workflow: Workflow,
    replacements: Dict[str, LogicalOperator],
    dropped_links,
) -> Workflow:
    """A new DAG with some operators replaced and internal links dropped."""
    rebuilt = Workflow(workflow.name)
    for op_id, operator in workflow.operators.items():
        replacement = replacements.get(op_id, operator)
        if replacement.operator_id not in rebuilt.operators:
            rebuilt.add_operator(replacement)
    for link in workflow.links:
        if (link.producer_id, link.consumer_id) in dropped_links:
            continue
        rebuilt.link(
            rebuilt.operators[
                replacements.get(
                    link.producer_id, workflow.operators[link.producer_id]
                ).operator_id
            ],
            rebuilt.operators[
                replacements.get(
                    link.consumer_id, workflow.operators[link.consumer_id]
                ).operator_id
            ],
            output_port=link.output_port,
            input_port=link.input_port,
        )
    rebuilt.placement_hints = dict(workflow.placement_hints)
    return rebuilt


# -- dead-column pruning -------------------------------------------------------


def _required_columns(workflow: Workflow) -> Dict[Link, Optional[frozenset]]:
    """Backward pass: columns each link must carry (None = all)."""
    order = workflow.topological_order()
    # Required *output* columns per operator: union over its out-links.
    required_out: Dict[str, Optional[frozenset]] = {}
    required_on_link: Dict[Link, Optional[frozenset]] = {}
    for operator in reversed(order):
        op_id = operator.operator_id
        out_links = workflow.out_links(op_id)
        if not out_links:
            required_out[op_id] = None  # sinks keep every column
        else:
            merged: Optional[frozenset] = frozenset()
            for link in out_links:
                need = required_on_link[link]
                if need is None:
                    merged = None
                    break
                merged = merged | need
            required_out[op_id] = merged
        for link in workflow.in_links(op_id):
            need = operator.required_input_columns(
                link.input_port, required_out[op_id]
            )
            key = operator.partition_key(link.input_port)
            if need is not None and key is not None:
                need = frozenset(need) | {key}
            required_on_link[link] = (
                frozenset(need) if need is not None else None
            )
    return required_on_link


def prune_dead_columns(workflow: Workflow) -> Workflow:
    """Insert projections on links carrying provably dead columns."""
    schemas = workflow.compile_schemas()
    required = _required_columns(workflow)
    rebuilt = _rebuild(workflow, {}, ())
    for link, need in required.items():
        if need is None:
            continue
        producer = workflow.operators[link.producer_id]
        schema = schemas[link.producer_id]
        keep = [name for name in schema.names if name in need]
        if not keep or len(keep) >= len(schema.names):
            continue
        pruner = ProjectionOperator(
            f"prune:{link.producer_id}->{link.consumer_id}",
            keep,
            language=producer.language,
            num_workers=producer.num_workers,
        )
        # Splice: producer -> pruner -> consumer, same ports.
        rebuilt.add_operator(pruner)
        rebuilt.links.remove(
            Link(
                link.producer_id,
                link.output_port,
                link.consumer_id,
                link.input_port,
            )
        )
        rebuilt.link(
            rebuilt.operators[link.producer_id],
            pruner,
            output_port=link.output_port,
        )
        rebuilt.link(
            pruner,
            rebuilt.operators[link.consumer_id],
            input_port=link.input_port,
        )
    return _drop_identity_pruners(rebuilt)


def _drop_identity_pruners(workflow: Workflow) -> Workflow:
    """Remove pruners made redundant by pruning further upstream.

    Requirements only grow walking upstream, so once the earliest
    projection of a chain narrows the stream, the pruners inserted on
    later links arrive at exactly the columns they keep.  One schema
    pass finds them: an identity projection changes nothing, so the
    removals never invalidate the compiled schemas.
    """
    pruner_ids = [
        op_id for op_id in workflow.operators if op_id.startswith("prune:")
    ]
    if not pruner_ids:
        return workflow
    schemas = workflow.compile_schemas()
    for pruner_id in pruner_ids:
        pruner = workflow.operators[pruner_id]
        (in_link,) = workflow.in_links(pruner_id)
        if schemas[in_link.producer_id].names != pruner.columns:
            continue
        (out_link,) = workflow.out_links(pruner_id)
        workflow.links.remove(in_link)
        workflow.links.remove(out_link)
        del workflow.operators[pruner_id]
        workflow.link(
            workflow.operators[in_link.producer_id],
            workflow.operators[out_link.consumer_id],
            output_port=in_link.output_port,
            input_port=out_link.input_port,
        )
    return workflow


# -- language-aware placement --------------------------------------------------


def placement_groups(workflow: Workflow) -> Dict[str, str]:
    """Group operators joined by cross-language links (union-find).

    The engine hands each group label to the scheduler as a
    ``colocate_key``: the group's instances land on one node, so the
    cross-language edges — which already pay the codec — at least stop
    paying the network transfer.
    """
    parent: Dict[str, str] = {}

    def find(op_id: str) -> str:
        root = op_id
        while parent.get(root, root) != root:
            root = parent[root]
        while parent.get(op_id, op_id) != root:
            parent[op_id], op_id = root, parent[op_id]
        return root

    touched = set()
    for link in workflow.links:
        producer = workflow.operators[link.producer_id]
        consumer = workflow.operators[link.consumer_id]
        if producer.language == consumer.language:
            continue
        touched.add(link.producer_id)
        touched.add(link.consumer_id)
        root_a, root_b = find(link.producer_id), find(link.consumer_id)
        if root_a != root_b:
            parent[max(root_a, root_b)] = min(root_a, root_b)
    return {op_id: f"lang-group:{find(op_id)}" for op_id in sorted(touched)}


# -- the driver ----------------------------------------------------------------


def optimize_workflow(
    workflow: Workflow,
    prune: bool = True,
    fuse: bool = True,
    placement: bool = True,
) -> Workflow:
    """Run the enabled rule passes; returns a new workflow.

    Prune runs before fuse so inserted projections can themselves be
    fused into their neighbours; placement hints are derived from the
    final operator graph.
    """
    optimized = workflow
    if prune:
        optimized = prune_dead_columns(optimized)
    if fuse:
        optimized = fuse_adjacent(optimized)
    if placement:
        optimized.placement_hints = placement_groups(optimized)
    return optimized
