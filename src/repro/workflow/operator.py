"""Logical operators and their physical executors.

A *logical operator* is what the user drags onto the Texera canvas: a
typed, configured building block with input/output ports.  At compile
time each logical operator fans out into ``num_workers`` *executors*
(physical instances); each executor runs as one simulation process on a
cluster node.

Executors do real Python work on tuples and *declare* virtual-time
charges through :meth:`OperatorExecutor.charge` /
:meth:`OperatorExecutor.charge_flops`; the worker loop converts pending
charges into simulated node compute after each call.
"""

from __future__ import annotations

import abc
from typing import Iterable, Optional, Sequence, Tuple as PyTuple

from repro.errors import InvalidWorkflow
from repro.relational import Schema, Tuple
from repro.workflow.language import OperatorLanguage

__all__ = [
    "LogicalOperator",
    "OperatorExecutor",
    "SourceExecutor",
    "PendingCharge",
]


class PendingCharge:
    """Virtual-time charges accumulated by an executor call."""

    __slots__ = ("seconds", "flops")

    def __init__(self) -> None:
        self.seconds = 0.0
        self.flops = 0.0

    def is_zero(self) -> bool:
        return self.seconds == 0.0 and self.flops == 0.0

    def take(self) -> PyTuple[float, float]:
        """Return and reset (seconds, flops)."""
        charge = (self.seconds, self.flops)
        self.seconds = 0.0
        self.flops = 0.0
        return charge


class OperatorExecutor(abc.ABC):
    """Physical instance of an operator, one per assigned worker.

    Lifecycle driven by the engine::

        open() -> process_tuple(t, port)* -> on_finish(port)* -> close()

    Ports are consumed in declared order when :attr:`consumes_ports_in_order`
    is True (e.g. a hash join reads its build port fully first).
    """

    def __init__(self) -> None:
        self.pending = PendingCharge()

    # -- cost declaration ----------------------------------------------------

    def charge(self, seconds: float) -> None:
        """Declare ``seconds`` of single-core work for the current call."""
        if seconds < 0:
            raise ValueError(f"negative charge: {seconds}")
        self.pending.seconds += seconds

    def charge_flops(self, flops: float) -> None:
        """Declare framework (model) compute for the current call.

        The engine converts FLOPs into time using the node's throughput
        and the engine's framework-core policy (Texera does not pin
        frameworks to one core — paper Section IV-A).
        """
        if flops < 0:
            raise ValueError(f"negative flops: {flops}")
        self.pending.flops += flops

    # -- lifecycle -----------------------------------------------------------

    def open(self) -> None:
        """One-off setup; may charge time (e.g. loading a model)."""

    @abc.abstractmethod
    def process_tuple(self, row: Tuple, port: int) -> Iterable[Tuple]:
        """Consume one input tuple, yield zero or more output tuples."""

    def on_finish(self, port: int) -> Iterable[Tuple]:
        """Input port exhausted; flush any buffered outputs."""
        return ()

    def close(self) -> None:
        """Tear down (symmetric with :meth:`open`)."""


class SourceExecutor(OperatorExecutor):
    """Executor of a source operator: produces rather than consumes."""

    @abc.abstractmethod
    def produce(self) -> Iterable[Tuple]:
        """Yield the source's tuples (the engine batches them)."""

    def process_tuple(self, row: Tuple, port: int) -> Iterable[Tuple]:
        raise InvalidWorkflow("source operators have no input ports")


class LogicalOperator(abc.ABC):
    """A configured operator on the workflow canvas."""

    def __init__(
        self,
        operator_id: str,
        language: OperatorLanguage = OperatorLanguage.PYTHON,
        num_workers: int = 1,
        per_tuple_work_s: float = 0.0,
        framework_cores: Optional[int] = None,
        output_batch_size: Optional[int] = None,
    ) -> None:
        if not operator_id:
            raise InvalidWorkflow("operator_id must be non-empty")
        if num_workers < 1:
            raise InvalidWorkflow(
                f"operator {operator_id!r}: num_workers must be >= 1"
            )
        if per_tuple_work_s < 0:
            raise InvalidWorkflow(
                f"operator {operator_id!r}: negative per_tuple_work_s"
            )
        if framework_cores is not None and framework_cores < 1:
            raise InvalidWorkflow(
                f"operator {operator_id!r}: framework_cores must be >= 1"
            )
        if output_batch_size is not None and output_batch_size < 1:
            raise InvalidWorkflow(
                f"operator {operator_id!r}: output_batch_size must be >= 1"
            )
        self.operator_id = operator_id
        self.language = language
        self.num_workers = num_workers
        #: Declared per-tuple relational work at Python speed; the
        #: engine scales it by the language profile.
        self.per_tuple_work_s = per_tuple_work_s
        #: Cores the operator's framework (model) compute may use; None
        #: means the engine default (Texera leaves frameworks unpinned,
        #: paper Section IV-A).  Operators whose compute is inherently
        #: sequential (SGD training) set this to 1.
        self.framework_cores = framework_cores
        #: Batch size on this operator's OUTPUT channels; None means
        #: the engine default.  The engine (like Texera, paper Section
        #: III-B) batches heavy tuples — whole files, model inputs — in
        #: small batches so downstream operators pipeline at fine grain,
        #: while light tuples ride in large batches.
        self.output_batch_size = output_batch_size

    # -- shape ------------------------------------------------------------------

    @property
    def num_input_ports(self) -> int:
        return 1

    @property
    def num_output_ports(self) -> int:
        return 1

    @property
    def is_source(self) -> bool:
        return self.num_input_ports == 0

    @property
    def is_sink(self) -> bool:
        return self.num_output_ports == 0

    @property
    def consumes_ports_in_order(self) -> bool:
        """Whether input ports must be drained sequentially (0, 1, ...)."""
        return self.num_input_ports > 1

    @property
    def is_blocking(self) -> bool:
        """True when no output is produced until all input is consumed.

        Blocking operators (sort, train, aggregate) are pipeline
        breakers; the paper's pipelining benefits accrue only to
        non-blocking chains.
        """
        return False

    def partition_key(self, port: int) -> Optional[str]:
        """Field to hash-partition this input port on, if required.

        Multi-worker stateful operators (joins, group-bys) return the
        key field so the compiler routes equal keys to equal workers;
        stateless operators return None (round-robin).
        """
        return None

    def partition_strategy(self, port: int) -> str:
        """Routing strategy for this input port: ``"hash"``,
        ``"broadcast"`` or ``"round_robin"``.

        The default derives from :meth:`partition_key`; operators that
        replicate an input to every worker (e.g. a broadcast-build
        join) override this.
        """
        return "hash" if self.partition_key(port) is not None else "round_robin"

    def with_output_batch_size(self, batch_size: int) -> "LogicalOperator":
        """Fluent override of the output batch size; returns ``self``.

        >>> wf.add_operator(TableSource("files", table).with_output_batch_size(1))
        """
        if batch_size < 1:
            raise InvalidWorkflow(
                f"operator {self.operator_id!r}: output_batch_size must be >= 1"
            )
        self.output_batch_size = batch_size
        return self

    # -- compile-time ---------------------------------------------------------------

    def required_input_columns(
        self, port: int, required_output: Optional[frozenset] = None
    ) -> Optional[frozenset]:
        """Columns this operator needs on input ``port``.

        ``required_output`` is the set of output columns downstream
        still needs (None = all of them).  Returns the input columns
        that must survive for the operator to produce that output —
        or None when the requirement is unknowable (UDFs, operators
        whose semantics depend on whole rows), which blocks the
        optimizer's dead-column pruning upstream of this port.
        """
        return None

    @abc.abstractmethod
    def output_schema(self, input_schemas: Sequence[Schema]) -> Schema:
        """Propagate schemas; raise :class:`InvalidWorkflow` on mismatch."""

    @abc.abstractmethod
    def create_executor(self, worker_index: int = 0) -> OperatorExecutor:
        """Instantiate the ``worker_index``-th physical executor.

        Called once per worker, ``worker_index`` in
        ``range(num_workers)`` — sources use it to slice their data
        across instances.
        """

    # ---------------------------------------------------------------------------

    def tuple_cost_s(self, port: int = 0) -> float:
        """Engine-side per-tuple cost for input ``port``.

        The default is port-independent; operators whose ports do
        asymmetric work (a hash join's build vs probe side) override
        this.
        """
        return self.language.tuple_cost(self.per_tuple_work_s)

    def __repr__(self) -> str:
        return (
            f"<{type(self).__name__} {self.operator_id!r} "
            f"lang={self.language.value} workers={self.num_workers}>"
        )
