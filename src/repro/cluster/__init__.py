"""Simulated GCP cluster: nodes, network, serialization cost models.

This package is the substitute for the paper's testbed (Section IV-A):
two clusters of four 8-vCPU/64 GB VMs.  See DESIGN.md section 2 for the
substitution rationale.
"""

from repro.cluster.cluster import CONTROLLER, Cluster, build_cluster
from repro.cluster.network import Network
from repro.cluster.node import Node
from repro.cluster.serialization import (
    Codec,
    CodecSuite,
    Sized,
    estimate_bytes,
    make_codecs,
)

__all__ = [
    "CONTROLLER",
    "Cluster",
    "build_cluster",
    "Network",
    "Node",
    "Codec",
    "CodecSuite",
    "Sized",
    "estimate_bytes",
    "make_codecs",
]
