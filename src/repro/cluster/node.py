"""A simulated cluster machine: vCPU pool plus RAM accounting."""

from __future__ import annotations

from typing import Generator

from repro.config import MachineConfig
from repro.errors import InsufficientResources
from repro.sim import Environment, Resource

__all__ = ["Node"]


class Node:
    """One VM of the paper's testbed (8 vCPUs, 64 GB RAM by default).

    CPU time is the contended resource: processes call :meth:`compute`
    (a simulation process) to occupy ``cores`` vCPUs for a duration.
    Co-scheduled work on the same node genuinely queues, which is how
    the simulation reproduces contention effects.

    RAM is tracked as a high-water counter against a mutable ceiling
    (``ram_limit``) — enough to model the paper's observation that
    Ray's object store "required a lot of memory", and to fail loudly
    if a task plan would not fit on the testbed machine.  The ceiling
    starts at the machine's physical RAM; :mod:`repro.mem` may shrink
    it (config override or an injected ``oom`` fault) and, when its
    policy is enabled, turns would-be failures into spilling and
    backpressure instead.
    """

    def __init__(self, env: Environment, name: str, machine: MachineConfig) -> None:
        self.env = env
        self.name = name
        self.machine = machine
        self.cpus = Resource(env, capacity=machine.num_cpus)
        self.ram_used = 0
        self.ram_peak = 0
        #: Largest single allocation ever admitted — with ``ram_peak``,
        #: the two numbers experiments need to pick a shrunken-RAM
        #: configuration that is survivable only by spilling.
        self.largest_alloc = 0
        #: Current RAM ceiling in bytes (see class docstring).
        self.ram_limit = machine.ram_bytes
        self.busy_seconds = 0.0

    @property
    def num_cpus(self) -> int:
        return self.machine.num_cpus

    @property
    def ram_bytes(self) -> int:
        return self.ram_limit

    @property
    def ram_free(self) -> int:
        return self.ram_limit - self.ram_used

    # -- CPU ---------------------------------------------------------------

    def compute(self, duration_s: float, cores: int = 1) -> Generator:
        """Simulation process: hold ``cores`` vCPUs for ``duration_s``.

        The duration is wall time on this node — callers that split
        work across cores are responsible for dividing their single-
        core work by the effective parallelism first (see
        ``repro.ml.flops.compute_seconds``).
        """
        if duration_s < 0:
            raise ValueError(f"negative compute duration: {duration_s}")
        if cores < 1:
            raise ValueError(f"cores must be >= 1, got {cores}")
        if cores > self.num_cpus:
            raise InsufficientResources(
                f"node {self.name!r} has {self.num_cpus} vCPUs, requested {cores}"
            )
        request = self.cpus.request(cores)
        try:
            yield request
        except BaseException:
            # The waiting process was killed (fault injection, abort,
            # interpreter teardown): withdraw the request so it neither
            # blocks the vCPU FIFO nor — if already granted — leaks cores.
            request.cancel()
            raise
        started = self.env.now
        try:
            try:
                yield self.env.timeout(duration_s)
            except BaseException:
                # Killed mid-compute: the elapsed slice still burned the
                # vCPUs, so charge it — otherwise utilization gauges
                # under-report exactly when faults are active.
                elapsed = (self.env.now - started) * cores
                if elapsed > 0:
                    self.busy_seconds += elapsed
                    tracer = self.env.tracer
                    if tracer.enabled:
                        tracer.metrics.counter("node.busy_s", node=self.name).add(
                            elapsed
                        )
                raise
            # The success path must keep charging duration_s * cores (not
            # now - started) so the accounting floats stay bit-identical.
            self.busy_seconds += duration_s * cores
            tracer = self.env.tracer
            if tracer.enabled:
                tracer.metrics.counter("node.busy_s", node=self.name).add(
                    duration_s * cores
                )
        finally:
            self.cpus.release(cores)

    # -- RAM ---------------------------------------------------------------

    def allocate_ram(self, nbytes: int) -> None:
        """Reserve ``nbytes`` of RAM; raises if the node would swap."""
        if nbytes < 0:
            raise ValueError(f"negative allocation: {nbytes}")
        if nbytes > self.ram_free:
            raise InsufficientResources(
                f"node {self.name!r}: allocation of {nbytes} bytes exceeds "
                f"free RAM ({self.ram_free} of {self.ram_bytes} bytes)"
            )
        self.ram_used += nbytes
        self.ram_peak = max(self.ram_peak, self.ram_used)
        if nbytes > self.largest_alloc:
            self.largest_alloc = nbytes
        tracer = self.env.tracer
        if tracer.enabled:
            tracer.metrics.gauge("mem.node_rss", node=self.name).set(self.ram_used)
            tracer.metrics.gauge("mem.high_water", node=self.name).set(
                self.ram_peak
            )

    def free_ram(self, nbytes: int) -> None:
        """Release a prior allocation."""
        if nbytes < 0:
            raise ValueError(f"negative free: {nbytes}")
        if nbytes > self.ram_used:
            raise ValueError(
                f"node {self.name!r}: freeing {nbytes} bytes but only "
                f"{self.ram_used} are allocated"
            )
        self.ram_used -= nbytes
        tracer = self.env.tracer
        if tracer.enabled:
            tracer.metrics.gauge("mem.node_rss", node=self.name).set(self.ram_used)

    def __repr__(self) -> str:
        return (
            f"<Node {self.name}: {self.cpus.in_use}/{self.num_cpus} vCPUs busy, "
            f"{self.ram_used / 2**20:.0f} MiB RAM used>"
        )
