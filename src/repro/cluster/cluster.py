"""Cluster topology: the paper's controller + four worker machines."""

from __future__ import annotations

from typing import Dict, Generator, List

from repro.config import ClusterTopologyConfig, ReproConfig, default_config
from repro.cluster.network import Network
from repro.cluster.node import Node
from repro.cluster.serialization import CodecSuite, make_codecs
from repro.cache import ResultCache, current_cache
from repro.errors import UnknownNode
from repro.faults.injector import current_injector
from repro.mem import MemoryManager, current_memory_config
from repro.obs.tracer import current_tracer
from repro.sim import Environment

__all__ = ["Cluster", "build_cluster"]

CONTROLLER = "controller"


class Cluster:
    """A simulated deployment: one controller node plus worker nodes.

    Both engines run on this object.  The Ray-like runtime treats the
    controller as the head node hosting the driver; the workflow engine
    treats it as the Texera controller hosting the web GUI.  Worker
    nodes are named ``worker-0`` .. ``worker-N-1``.
    """

    def __init__(
        self,
        env: Environment,
        config: ReproConfig,
        tracer=None,
        faults=None,
        memory=None,
        cache=None,
    ) -> None:
        self.env = env
        self.config = config
        #: Observability sink (``repro.obs``): an explicitly injected
        #: tracer, else the globally installed one, else the no-op null
        #: tracer.  Attached to this environment as a fresh run and
        #: exposed to every component through ``env.tracer``.
        self.tracer = tracer if tracer is not None else current_tracer()
        self.tracer.attach(env)
        env.tracer = self.tracer
        #: Fault injector (``repro.faults``), resolved exactly like the
        #: tracer: explicit argument, else the globally installed one,
        #: else the dormant null injector.
        self.faults = faults if faults is not None else current_injector()
        self.faults.attach(env)
        env.faults = self.faults
        topology: ClusterTopologyConfig = config.topology
        self.controller = Node(env, CONTROLLER, topology.machine)
        self.workers: List[Node] = [
            Node(env, f"worker-{i}", topology.machine)
            for i in range(topology.num_workers)
        ]
        self._nodes: Dict[str, Node] = {CONTROLLER: self.controller}
        for worker in self.workers:
            self._nodes[worker.name] = worker
        self.network = Network(env, topology.network)
        self.codecs: CodecSuite = make_codecs(config.serialization)
        #: Memory-pressure layer (``repro.mem``), resolved like the
        #: tracer: explicit argument, else the globally installed
        #: policy, else the config's (dormant by default).  Always
        #: constructed — a dormant manager is pure bookkeeping and the
        #: single ``mem.active`` flag keeps call sites branch-cheap.
        mem_config = memory
        if mem_config is None:
            mem_config = current_memory_config()
        if mem_config is None:
            mem_config = config.memory
        self.memory = MemoryManager(self, mem_config)
        self.faults.register_memory(self.memory)
        #: Result cache (``repro.cache``), resolved like the tracer:
        #: explicit argument, else the globally installed *instance*
        #: (shared across clusters — that persistence is what makes a
        #: cold-vs-warm sweep possible), else a fresh per-cluster
        #: instance from the config (dormant by default).
        resolved_cache = cache
        if resolved_cache is None:
            resolved_cache = current_cache()
        if resolved_cache is None:
            resolved_cache = ResultCache(config.cache)
        self.cache = resolved_cache

    # -- topology ------------------------------------------------------------

    @property
    def num_workers(self) -> int:
        return len(self.workers)

    def node(self, name: str) -> Node:
        """Look a node up by name; raises :class:`UnknownNode`."""
        try:
            return self._nodes[name]
        except KeyError:
            raise UnknownNode(
                f"no node named {name!r}; have {sorted(self._nodes)}"
            ) from None

    def node_names(self) -> List[str]:
        return list(self._nodes)

    def worker_round_robin(self, index: int) -> Node:
        """Deterministic worker assignment for the i-th placement.

        .. deprecated::
            Placement decisions belong to :class:`repro.sched.Scheduler`;
            this method remains only as a compatibility shim and now
            delegates to the default policy's arithmetic.  New code
            should build a scheduler and call
            :meth:`repro.sched.Scheduler.place`.
        """
        from repro.sched.policy import round_robin_index  # local: avoid cycle

        return self.workers[round_robin_index(index, self.num_workers)]

    # -- data movement ---------------------------------------------------------

    def transfer(self, src: str, dst: str, nbytes: int) -> Generator:
        """Simulation process moving ``nbytes`` between two nodes."""
        self.node(src)
        self.node(dst)
        result = yield self.env.process(self.network.transfer(src, dst, nbytes))
        return result

    # -- accounting -------------------------------------------------------------

    def total_busy_seconds(self) -> float:
        """Aggregate CPU-seconds consumed across all nodes."""
        return sum(node.busy_seconds for node in self._nodes.values())

    def __repr__(self) -> str:
        return f"<Cluster controller + {self.num_workers} workers @ t={self.env.now:.2f}s>"


def build_cluster(
    env: Environment,
    config: ReproConfig = None,
    tracer=None,
    faults=None,
    memory=None,
    cache=None,
) -> Cluster:
    """Construct the paper's testbed topology on ``env``.

    ``config`` defaults to the calibrated :func:`repro.config.default_config`;
    ``tracer`` defaults to the globally installed tracer (usually the
    no-op null tracer — see :mod:`repro.obs`); ``faults`` defaults to
    the globally installed fault injector (usually dormant — see
    :mod:`repro.faults`); ``memory`` is a
    :class:`repro.config.MemoryConfig` overriding the globally
    installed memory policy (see :mod:`repro.mem`); ``cache`` is a
    :class:`repro.cache.ResultCache` instance overriding the globally
    installed cache (see :mod:`repro.cache`).
    """
    return Cluster(
        env,
        config or default_config(),
        tracer=tracer,
        faults=faults,
        memory=memory,
        cache=cache,
    )
