"""Cluster topology: the paper's controller + four worker machines."""

from __future__ import annotations

from typing import Any, Callable, Dict, Generator, List, Optional, Set

from repro.config import ClusterTopologyConfig, MachineConfig, ReproConfig, default_config
from repro.cluster.network import Network
from repro.cluster.node import Node
from repro.cluster.serialization import CodecSuite, make_codecs
from repro.cache import ResultCache, current_cache
from repro.errors import DrainError, UnknownNode
from repro.faults.injector import current_injector
from repro.mem import MemoryManager, current_memory_config
from repro.obs.tracer import current_tracer
from repro.sim import Environment

__all__ = ["Cluster", "build_cluster", "DRAIN_POLL_S"]

CONTROLLER = "controller"

#: Cadence at which a drain re-checks that a node has quiesced.
DRAIN_POLL_S = 0.05


class Cluster:
    """A simulated deployment: one controller node plus worker nodes.

    Both engines run on this object.  The Ray-like runtime treats the
    controller as the head node hosting the driver; the workflow engine
    treats it as the Texera controller hosting the web GUI.  Worker
    nodes are named ``worker-0`` .. ``worker-N-1``.
    """

    def __init__(
        self,
        env: Environment,
        config: ReproConfig,
        tracer=None,
        faults=None,
        memory=None,
        cache=None,
    ) -> None:
        self.env = env
        self.config = config
        #: Observability sink (``repro.obs``): an explicitly injected
        #: tracer, else the globally installed one, else the no-op null
        #: tracer.  Attached to this environment as a fresh run and
        #: exposed to every component through ``env.tracer``.
        self.tracer = tracer if tracer is not None else current_tracer()
        self.tracer.attach(env)
        env.tracer = self.tracer
        #: Fault injector (``repro.faults``), resolved exactly like the
        #: tracer: explicit argument, else the globally installed one,
        #: else the dormant null injector.
        self.faults = faults if faults is not None else current_injector()
        self.faults.attach(env)
        env.faults = self.faults
        topology: ClusterTopologyConfig = config.topology
        self.controller = Node(env, CONTROLLER, topology.machine)
        self.workers: List[Node] = [
            Node(env, f"worker-{i}", topology.machine)
            for i in range(topology.num_workers)
        ]
        self._nodes: Dict[str, Node] = {CONTROLLER: self.controller}
        for worker in self.workers:
            self._nodes[worker.name] = worker
        #: Membership bookkeeping (``repro.elastic``).  Listeners are
        #: called as ``listener(action, node)`` with ``action`` in
        #: {"add", "remove"}; ``draining`` names workers mid-drain so
        #: placement layers stop targeting them before removal lands.
        self._membership_listeners: List[Callable[[str, Node], None]] = []
        self.draining: Set[str] = set()
        #: Object stores that must relocate replicas when a node drains.
        self.stores: List[Any] = []
        self._joined_s: Dict[str, float] = {
            worker.name: env.now for worker in self.workers
        }
        self._node_seconds_retired = 0.0
        self._busy_seconds_retired = 0.0
        self.peak_workers = len(self.workers)
        self.network = Network(env, topology.network)
        self.codecs: CodecSuite = make_codecs(config.serialization)
        #: Memory-pressure layer (``repro.mem``), resolved like the
        #: tracer: explicit argument, else the globally installed
        #: policy, else the config's (dormant by default).  Always
        #: constructed — a dormant manager is pure bookkeeping and the
        #: single ``mem.active`` flag keeps call sites branch-cheap.
        mem_config = memory
        if mem_config is None:
            mem_config = current_memory_config()
        if mem_config is None:
            mem_config = config.memory
        self.memory = MemoryManager(self, mem_config)
        self.faults.register_memory(self.memory)
        #: Result cache (``repro.cache``), resolved like the tracer:
        #: explicit argument, else the globally installed *instance*
        #: (shared across clusters — that persistence is what makes a
        #: cold-vs-warm sweep possible), else a fresh per-cluster
        #: instance from the config (dormant by default).
        resolved_cache = cache
        if resolved_cache is None:
            resolved_cache = current_cache()
        if resolved_cache is None:
            resolved_cache = ResultCache(config.cache)
        self.cache = resolved_cache

    # -- topology ------------------------------------------------------------

    @property
    def num_workers(self) -> int:
        return len(self.workers)

    def node(self, name: str) -> Node:
        """Look a node up by name; raises :class:`UnknownNode`."""
        try:
            return self._nodes[name]
        except KeyError:
            raise UnknownNode(
                f"no node named {name!r}; have {sorted(self._nodes)}"
            ) from None

    def node_names(self) -> List[str]:
        return list(self._nodes)

    # -- membership (repro.elastic) --------------------------------------------

    def add_membership_listener(self, listener: Callable[[str, Node], None]) -> None:
        """Subscribe to worker joins/leaves: ``listener(action, node)``."""
        self._membership_listeners.append(listener)

    def register_store(self, store: Any) -> None:
        """Register an object store whose replicas must survive drains."""
        self.stores.append(store)

    def joined_at(self, name: str) -> float:
        """Virtual time at which worker ``name`` joined the cluster."""
        return self._joined_s[name]

    def add_node(self, name: str, machine: Optional[MachineConfig] = None) -> Node:
        """Join a new worker to the cluster immediately.

        ``machine`` defaults to the topology's homogeneous shape; pass
        any :class:`repro.config.MachineConfig` (or a named shape from
        ``repro.elastic.MACHINE_SHAPES``) for heterogeneous fleets.
        Provisioning latency is the caller's concern — the autoscaler
        pays it through :meth:`provision_node`.
        """
        if name in self._nodes:
            raise ValueError(f"node {name!r} already exists")
        node = Node(self.env, name, machine or self.config.topology.machine)
        self.workers.append(node)
        self._nodes[name] = node
        self._joined_s[name] = self.env.now
        self.peak_workers = max(self.peak_workers, len(self.workers))
        self.memory.add_node(name)
        for listener in list(self._membership_listeners):
            listener("add", node)
        tracer = self.env.tracer
        if tracer.enabled:
            tracer.metrics.gauge("cluster.nodes").set(len(self.workers))
        return node

    def provision_node(
        self,
        name: str,
        machine: Optional[MachineConfig] = None,
        latency_s: float = 0.0,
    ) -> Generator:
        """Simulation process: pay virtual boot latency, then join."""
        if latency_s < 0:
            raise ValueError(f"negative provisioning latency: {latency_s}")
        if latency_s > 0:
            yield self.env.timeout(latency_s)
        return self.add_node(name, machine)

    def remove_node(self, name: str, drain: bool = True):
        """Start removing worker ``name``; returns a simulation process.

        With ``drain=True`` the node is marked draining *synchronously*
        (so placement layers stop targeting it the moment this is
        called) and the returned generator waits for outstanding vCPU
        requests to finish, migrates sole object-store replicas to a
        surviving worker (redundant replicas are dropped for free), and
        waits for RAM reservations to clear before retiring the node.

        With ``drain=False`` the removal reuses the node-kill machinery
        (:meth:`ObjectStore.evict_node`): replicas are dropped as in a
        crash, and any sole un-reconstructable replica stays addressed
        to the now-gone node — later fetches fail loudly with
        :class:`UnknownNode`, exactly as after a real crash.

        Run it with ``env.process(cluster.remove_node(...))`` or
        ``yield from`` inside another process.
        """
        node = self.node(name)
        if node is self.controller:
            raise ValueError("cannot remove the controller node")
        if name in self.draining:
            raise ValueError(f"node {name!r} is already draining")
        active = [w for w in self.workers if w.name not in self.draining]
        if len(active) <= 1:
            raise DrainError("cannot remove the last active worker")
        if drain:
            self.draining.add(name)
        return self._remove(node, drain)

    def _remove(self, node: Node, drain: bool) -> Generator:
        try:
            if drain:
                while node.cpus.in_use > 0 or node.cpus._waiters:
                    yield self.env.timeout(DRAIN_POLL_S)
                target = self._migration_target(node.name)
                for store in list(self.stores):
                    yield from store.migrate_node(node.name, target)
                while node.ram_used > 0:
                    yield self.env.timeout(DRAIN_POLL_S)
            else:
                for store in list(self.stores):
                    store.evict_node(node.name)
        finally:
            self.draining.discard(node.name)
        self._retire(node)
        return node

    def _migration_target(self, exclude: str) -> Optional[str]:
        for worker in self.workers:
            if worker.name != exclude and worker.name not in self.draining:
                return worker.name
        return None

    def _retire(self, node: Node) -> None:
        self.workers.remove(node)
        del self._nodes[node.name]
        self._node_seconds_retired += self.env.now - self._joined_s.pop(node.name)
        self._busy_seconds_retired += node.busy_seconds
        self.memory.remove_node(node.name)
        for listener in list(self._membership_listeners):
            listener("remove", node)
        tracer = self.env.tracer
        if tracer.enabled:
            tracer.metrics.gauge("cluster.nodes").set(len(self.workers))

    # -- data movement ---------------------------------------------------------

    def transfer(self, src: str, dst: str, nbytes: int) -> Generator:
        """Simulation process moving ``nbytes`` between two nodes."""
        self.node(src)
        self.node(dst)
        result = yield self.env.process(self.network.transfer(src, dst, nbytes))
        return result

    # -- accounting -------------------------------------------------------------

    def total_busy_seconds(self) -> float:
        """Aggregate CPU-seconds consumed across all nodes, ever.

        Includes nodes retired by :meth:`remove_node` — their busy time
        was real even though the machine is gone.
        """
        return self._busy_seconds_retired + sum(
            node.busy_seconds for node in self._nodes.values()
        )

    def node_seconds(self) -> float:
        """Worker machine-seconds paid so far (the cluster's cost bill).

        Each worker is billed from its join time to now (or to its
        retirement); the controller is free, matching how the paper's
        cost discussion counts rented worker VMs.
        """
        now = self.env.now
        return self._node_seconds_retired + sum(
            now - self._joined_s[worker.name] for worker in self.workers
        )

    def __repr__(self) -> str:
        return f"<Cluster controller + {self.num_workers} workers @ t={self.env.now:.2f}s>"


def build_cluster(
    env: Environment,
    config: ReproConfig = None,
    tracer=None,
    faults=None,
    memory=None,
    cache=None,
) -> Cluster:
    """Construct the paper's testbed topology on ``env``.

    ``config`` defaults to the calibrated :func:`repro.config.default_config`;
    ``tracer`` defaults to the globally installed tracer (usually the
    no-op null tracer — see :mod:`repro.obs`); ``faults`` defaults to
    the globally installed fault injector (usually dormant — see
    :mod:`repro.faults`); ``memory`` is a
    :class:`repro.config.MemoryConfig` overriding the globally
    installed memory policy (see :mod:`repro.mem`); ``cache`` is a
    :class:`repro.cache.ResultCache` instance overriding the globally
    installed cache (see :mod:`repro.cache`).
    """
    return Cluster(
        env,
        config or default_config(),
        tracer=tracer,
        faults=faults,
        memory=memory,
        cache=cache,
    )
