"""Intra-cluster network model.

Transfers between distinct nodes pay latency plus bytes/bandwidth;
loopback (same node) transfers are free, matching how both Ray and
Texera short-circuit local data movement.

The model is contention-free per transfer (GCP intra-zone links are far
from saturated by these workloads); what matters to the reproduced
experiments is the *size-proportional* cost of shipping models and tuple
batches between machines.
"""

from __future__ import annotations

from typing import Generator

from repro.config import NetworkConfig
from repro.sim import Environment

__all__ = ["Network"]


class Network:
    """Uniform full-mesh network between cluster nodes."""

    def __init__(self, env: Environment, config: NetworkConfig) -> None:
        self.env = env
        self.config = config
        self.bytes_moved = 0
        self.transfers = 0

    def transfer_time(self, src: str, dst: str, nbytes: int) -> float:
        """Virtual seconds to move ``nbytes`` from ``src`` to ``dst``."""
        if nbytes < 0:
            raise ValueError(f"negative transfer size: {nbytes}")
        if src == dst:
            return 0.0
        return self.config.transfer_time(nbytes)

    def transfer(self, src: str, dst: str, nbytes: int) -> Generator:
        """Simulation process performing the transfer.

        A transfer starting inside a link-degradation window (injected
        by :mod:`repro.faults`) takes ``factor`` times longer; the
        factor is sampled once at transfer start, which keeps the
        charge deterministic for transfers straddling a window edge.
        """
        duration = self.transfer_time(src, dst, nbytes)
        factor = self.env.faults.link_factor(self.env.now)
        tracer = self.env.tracer
        span = None
        if src != dst:
            self.bytes_moved += nbytes
            self.transfers += 1
            if tracer.enabled:
                link = f"{src}->{dst}"
                tracer.metrics.counter("network.bytes", link=link).add(nbytes)
                tracer.metrics.counter("network.transfers", link=link).inc()
                span = tracer.start(
                    "transfer", category="network", node=src, dst=dst, nbytes=nbytes
                )
                if factor > 1.0:
                    span.attrs["degraded_factor"] = factor
                    tracer.metrics.counter("faults.link_slowdown_s").add(
                        duration * (factor - 1.0)
                    )
        try:
            if duration > 0:
                yield self.env.timeout(duration * factor)
        finally:
            if span is not None:
                tracer.end(span)
        return nbytes

    def broadcast_time(self, src: str, destinations: int, nbytes: int) -> float:
        """Cost of sending one payload to ``destinations`` other nodes.

        Modelled as sequential unicasts from the source — this is the
        distribution pattern the paper credits Texera with for the
        GOTTA model ("loaded the model and distributed it through the
        network to each worker").

        A broadcast overlapping a link-degradation window pays the same
        sampled factor :meth:`transfer` charges its unicasts — sampled
        once at broadcast start, covering every destination, so the
        charge matches ``destinations`` equivalent unicasts issued at
        the same instant.
        """
        if destinations < 0:
            raise ValueError(f"negative destination count: {destinations}")
        factor = self.env.faults.link_factor(self.env.now)
        return destinations * self.config.transfer_time(nbytes) * factor
