"""Payload sizing and serialization cost models.

The engines never serialize real bytes — payloads stay live Python
objects — but every runtime boundary (object store, inter-operator
channel, network hop) charges virtual time proportional to an estimated
payload size.  This module provides:

* :func:`estimate_bytes` — a deterministic structural size estimator;
* :class:`Codec` — named encode/decode throughput pairs built from
  :class:`repro.config.SerializationConfig`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.config import SerializationConfig

__all__ = ["estimate_bytes", "Codec", "make_codecs", "Sized", "record_codec"]

#: Flat overhead charged for every boxed Python object.
_OBJECT_OVERHEAD = 16
#: Overhead per container entry (pointer + bookkeeping).
_ENTRY_OVERHEAD = 8


class Sized:
    """Mixin for objects that know their own payload size.

    Classes that carry large or non-structural payloads (e.g. a model
    with a parameter blob) implement :meth:`payload_bytes` and the
    estimator trusts them.
    """

    def payload_bytes(self) -> int:
        raise NotImplementedError


#: Exact-type dispatch for the scalar cases — the bulk of calls on the
#: per-row engine paths.  Exact types cannot be :class:`Sized`
#: subclasses, so the shortcut returns the same sizes as the
#: isinstance chain below (which still handles subclasses).
_SCALAR_SIZES = {type(None): 4, bool: 4, int: 8, float: 8}


def estimate_bytes(obj: Any) -> int:
    """Estimate the serialized size of ``obj`` in bytes.

    The estimate is structural and deterministic: it depends only on
    the object's shape and content lengths, never on interpreter
    internals, so simulated timings are stable across Python versions.
    """
    cls = type(obj)
    size = _SCALAR_SIZES.get(cls)
    if size is not None:
        return size
    if cls is tuple or cls is list:
        total = _OBJECT_OVERHEAD
        for item in obj:
            total += _ENTRY_OVERHEAD + estimate_bytes(item)
        return total
    if cls is str:
        return _OBJECT_OVERHEAD + len(obj)
    if obj is None:
        return 4
    if isinstance(obj, Sized):
        return obj.payload_bytes()
    if isinstance(obj, bool):
        return 4
    if isinstance(obj, int):
        return 8
    if isinstance(obj, float):
        return 8
    if isinstance(obj, str):
        return _OBJECT_OVERHEAD + len(obj)
    if isinstance(obj, (bytes, bytearray)):
        return _OBJECT_OVERHEAD + len(obj)
    # numpy arrays (and anything exposing .nbytes) without importing numpy
    nbytes = getattr(obj, "nbytes", None)
    if isinstance(nbytes, int):
        return _OBJECT_OVERHEAD + nbytes
    if isinstance(obj, dict):
        total = _OBJECT_OVERHEAD
        for key, value in obj.items():
            total += _ENTRY_OVERHEAD + estimate_bytes(key) + estimate_bytes(value)
        return total
    if isinstance(obj, (list, tuple, set, frozenset)):
        total = _OBJECT_OVERHEAD
        for item in obj:
            total += _ENTRY_OVERHEAD + estimate_bytes(item)
        return total
    # Dataclass-like objects: size their __dict__ / __slots__ fields.
    state = getattr(obj, "__dict__", None)
    if state:
        return _OBJECT_OVERHEAD + estimate_bytes(state)
    slots = getattr(obj, "__slots__", None)
    if slots:
        total = _OBJECT_OVERHEAD
        for name in slots:
            if hasattr(obj, name):
                total += _ENTRY_OVERHEAD + estimate_bytes(getattr(obj, name))
        return total
    return _OBJECT_OVERHEAD


@dataclass(frozen=True)
class Codec:
    """A named serializer with encode/decode throughput.

    ``per_item_s`` is an additional per-tuple conversion cost; only the
    cross-language bridge pays it (each tuple is re-boxed between the
    Python and JVM object models, the dominant cost of mixed-language
    workflow edges).
    """

    name: str
    base_s: float
    bytes_per_s: float
    per_item_s: float = 0.0

    def encode_time(self, nbytes: int, items: int = 0) -> float:
        """Virtual seconds to serialize ``nbytes`` over ``items`` tuples."""
        if nbytes < 0:
            raise ValueError(f"negative payload size: {nbytes}")
        if items < 0:
            raise ValueError(f"negative item count: {items}")
        return self.base_s + nbytes / self.bytes_per_s + self.per_item_s * items

    def decode_time(self, nbytes: int, items: int = 0) -> float:
        """Virtual seconds to deserialize ``nbytes`` over ``items`` tuples.

        Decoding is modelled at the same throughput as encoding; the
        distinction is kept in the API so call sites read correctly.
        """
        return self.encode_time(nbytes, items)

    def round_trip_time(self, nbytes: int, items: int = 0) -> float:
        """Encode + decode, the cost of crossing one runtime boundary."""
        return self.encode_time(nbytes, items) + self.decode_time(nbytes, items)


@dataclass(frozen=True)
class CodecSuite:
    """The three boundary codecs used across the engines."""

    python: Codec
    jvm: Codec
    cross_language: Codec

    def for_boundary(self, producer_language: str, consumer_language: str) -> Codec:
        """Pick the codec for a producer→consumer language boundary.

        Same-language JVM edges use the JVM codec, same-language Python
        edges the Python codec, and mixed edges the (slower) cross-
        language bridge — this is the mechanism behind the paper's
        runtime-overhead discussion in Section III-D.
        """
        jvm = {"scala", "java"}
        if producer_language in jvm and consumer_language in jvm:
            return self.jvm
        if producer_language == "python" and consumer_language == "python":
            return self.python
        return self.cross_language


def record_codec(
    tracer, codec: Codec, direction: str, nbytes: int, items: int, seconds: float
) -> None:
    """Count one codec invocation into a tracer's metrics registry.

    Called by the engines wherever encode/decode time is charged
    (workflow channels, sink gathering); keeps per-codec byte and
    virtual-second totals so cross-language bridge costs (paper
    Table I) are directly queryable.  No-op under the null tracer.
    """
    if not tracer.enabled:
        return
    metrics = tracer.metrics
    metrics.counter("serialize.bytes", codec=codec.name, direction=direction).add(
        nbytes
    )
    metrics.counter("serialize.items", codec=codec.name, direction=direction).add(
        items
    )
    metrics.counter("serialize.seconds", codec=codec.name, direction=direction).add(
        seconds
    )
    metrics.counter("serialize.calls", codec=codec.name, direction=direction).inc()


def make_codecs(config: SerializationConfig) -> CodecSuite:
    """Build the codec suite from configuration constants."""
    return CodecSuite(
        python=Codec("python", config.base_s, config.python_bytes_per_s),
        jvm=Codec("jvm", config.base_s, config.jvm_bytes_per_s),
        cross_language=Codec(
            "cross-language",
            config.base_s,
            config.cross_language_bytes_per_s,
            per_item_s=config.cross_language_per_tuple_s,
        ),
    )
