"""Deterministic fingerprints for lineage-keyed caching.

A fingerprint is a short hex digest identifying *what would be
computed*: the producing function, the lineage of its arguments and
the cache epoch.  Two submissions with equal fingerprints are
guaranteed to produce equal results (the simulation's real Python
computation is deterministic), so the cache can skip the virtual-time
charges of re-execution.

Functions are fingerprinted structurally (module, qualname, code
bytes, defaults and closure cells) rather than by ``id()`` so that a
re-created lambda or a reconstructed lineage entry maps to the same
key — this is what makes fault-driven re-execution hit the cache.
``hash()`` is never used: it is salted per interpreter run for
strings, which would break cross-run determinism.
"""

from __future__ import annotations

import hashlib
import pickle
from typing import Any, Iterable
from weakref import WeakKeyDictionary

__all__ = [
    "combine",
    "fingerprint_value",
    "fingerprint_function",
]

_DIGEST_BYTES = 16

#: Everything ``pickle.dumps`` raises for *unpicklable input* — as
#: opposed to programming errors, which should surface.  PicklingError
#: covers unregistered/local types, TypeError unpicklable primitives
#: (locks, generators), AttributeError missing ``__reduce__`` lookups,
#: ValueError mid-pickle state errors, RecursionError deep object
#: graphs.  Anything outside this set propagates instead of being
#: silently swallowed into a shared "opaque" digest.
_PICKLE_FAILURES = (
    pickle.PicklingError,
    TypeError,
    AttributeError,
    ValueError,
    RecursionError,
)


def _note_fallback(kind: str) -> None:
    """Count a structural-fallback event on the installed tracer.

    The fallback digest is weaker than a pickle digest (it sees only
    attribute state), so traced runs record how often caching had to
    rely on it — a spike in ``cache.fingerprint.fallback`` is the cue
    to make the offending type picklable.
    """
    from repro.obs import current_tracer

    tracer = current_tracer()
    if tracer.enabled:
        tracer.metrics.counter("cache.fingerprint.fallback", kind=kind).inc()


def _instance_state(value: Any) -> Any:
    """Observable attribute state: ``__dict__`` plus ``__slots__``.

    ``__slots__`` classes have no ``__dict__``, so a fallback that only
    looked there digested every instance to the same opaque value —
    distinct states collided, and the cache could serve a stale result.
    Walking the MRO collects slot descriptors from every base class.
    """
    state: dict = {}
    plain = getattr(value, "__dict__", None)
    if plain:
        state.update(plain)
    for klass in type(value).__mro__:
        slots = klass.__dict__.get("__slots__", ())
        if isinstance(slots, str):
            slots = (slots,)
        for name in slots:
            if name in ("__dict__", "__weakref__") or name in state:
                continue
            try:
                state[name] = getattr(value, name)
            except AttributeError:  # slot declared but never assigned
                state[name] = "<unset-slot>"
    return state


def _digest(parts: Iterable[bytes]) -> str:
    h = hashlib.blake2b(digest_size=_DIGEST_BYTES)
    for part in parts:
        h.update(part)
        h.update(b"\x00")
    return h.hexdigest()


def combine(*parts: Any) -> str:
    """Hash any mix of strings/ints/floats/digests into one digest."""
    return _digest(str(p).encode("utf-8", "backslashreplace") for p in parts)


#: Recursion bound for structural fingerprinting — deep enough for any
#: real operator/argument graph, shallow enough to survive cycles.
_MAX_DEPTH = 12


def fingerprint_value(value: Any, _depth: int = 0) -> str:
    """Fingerprint an arbitrary argument or payload value.

    Containers recurse (so a list holding a lambda keys by the
    lambda's code, not its identity); plain data takes a pickle
    round-trip (stable for the simulation's lists, dataclasses and
    tables); unpicklable objects fall back to a structural digest of
    their attribute state (``__dict__`` plus ``__slots__`` across the
    MRO), counted as ``cache.fingerprint.fallback`` on traced runs.
    ``repr`` is never trusted for objects — it
    embeds memory addresses, which would silently break cross-run
    determinism.
    """
    if value is None or isinstance(value, (bool, int, float, str, bytes)):
        return combine("atom", type(value).__name__, value)
    if isinstance(value, type):
        return combine("type", value.__module__, value.__qualname__)
    if callable(value):
        return fingerprint_function(value)
    if _depth >= _MAX_DEPTH:
        return combine("depth-limit", type(value).__qualname__)
    if isinstance(value, (list, tuple)):
        return combine(
            "seq",
            type(value).__name__,
            *(fingerprint_value(item, _depth + 1) for item in value),
        )
    if isinstance(value, dict):
        items = sorted(
            (fingerprint_value(k, _depth + 1), fingerprint_value(v, _depth + 1))
            for k, v in value.items()
        )
        return combine("map", *(part for pair in items for part in pair))
    if isinstance(value, (set, frozenset)):
        return combine(
            "set", *sorted(fingerprint_value(item, _depth + 1) for item in value)
        )
    try:
        payload = pickle.dumps(value, protocol=4)
    except _PICKLE_FAILURES:
        _note_fallback("value")
        state = _instance_state(value)
        if state:
            return combine(
                "obj",
                type(value).__module__,
                type(value).__qualname__,
                fingerprint_value(state, _depth + 1),
            )
        return combine("opaque", type(value).__module__, type(value).__qualname__)
    return _digest([type(value).__qualname__.encode("utf-8"), payload])


#: Memoised immutable byte parts per code object.  ``repr(co_consts)``
#: dominates fingerprinting cost on submit-heavy runs; code objects are
#: immutable, so the derived bytes never go stale.  Keyed weakly so
#: short-lived lambdas don't accumulate.  Function-level attributes
#: (``__module__``/``__qualname__``/defaults/closures) are *not* cached
#: here — they are mutable and hashed fresh on every call.
_CODE_PARTS: "WeakKeyDictionary[Any, tuple]" = WeakKeyDictionary()


def _code_parts(code: Any) -> tuple:
    parts = _CODE_PARTS.get(code)
    if parts is None:
        parts = (
            code.co_code,
            repr(code.co_consts).encode("utf-8", "backslashreplace"),
            repr(code.co_names).encode("utf-8"),
        )
        _CODE_PARTS[code] = parts
    return parts


def fingerprint_function(fn: Any) -> str:
    """Fingerprint a callable by structure, not identity.

    Plain functions and lambdas hash their module, qualname, code
    bytes, defaults and (recursively) closure cells.  Bound methods
    include the fingerprint of ``__self__``.  Anything else (functools
    partials, callable instances) falls back to
    :func:`fingerprint_value` on its parts.
    """
    if hasattr(fn, "__func__") and hasattr(fn, "__self__"):
        return combine(
            "method",
            fingerprint_function(fn.__func__),
            fingerprint_value(fn.__self__),
        )
    code = getattr(fn, "__code__", None)
    if code is None:
        # Callable object / partial: hash its type and attributes.
        func = getattr(fn, "func", None)
        if func is not None and callable(func):  # functools.partial-like
            return combine(
                "partial",
                fingerprint_function(func),
                fingerprint_value(getattr(fn, "args", ())),
                fingerprint_value(sorted(getattr(fn, "keywords", {}).items())),
            )
        try:
            payload = pickle.dumps(fn, protocol=4)
        except _PICKLE_FAILURES:
            _note_fallback("callable")
            state = _instance_state(fn)
            return combine(
                "callable",
                type(fn).__module__,
                type(fn).__qualname__,
                fingerprint_value(state) if state else "",
            )
        return _digest(
            [b"callable", type(fn).__qualname__.encode("utf-8"), payload]
        )
    parts = [
        b"function",
        getattr(fn, "__module__", "?").encode("utf-8"),
        getattr(fn, "__qualname__", "?").encode("utf-8"),
        *_code_parts(code),
    ]
    defaults = getattr(fn, "__defaults__", None) or ()
    for default in defaults:
        parts.append(fingerprint_value(default).encode("ascii"))
    closure = getattr(fn, "__closure__", None) or ()
    for cell in closure:
        try:
            contents = cell.cell_contents
        except ValueError:  # empty cell
            parts.append(b"<empty-cell>")
            continue
        if callable(contents) and not isinstance(contents, type):
            parts.append(fingerprint_function(contents).encode("ascii"))
        else:
            parts.append(fingerprint_value(contents).encode("ascii"))
    return _digest(parts)
