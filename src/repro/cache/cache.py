"""The lineage-keyed result cache shared by both engines.

:class:`ResultCache` maps fingerprints (see
:mod:`repro.cache.fingerprint`) to small metadata records — the result
*values* are never stored.  The simulation's real Python computation is
free in virtual time, so on a hit the engine replays the producer
without charging compute/store/transfer costs and is structurally
guaranteed to obtain the same values a miss would.  What the cache
saves, therefore, is exactly the virtual time the paper's experiment
sweeps burn on re-running identical upstream stages.

Entries are organised per node with LRU order: inserting beyond
``capacity_bytes`` evicts the least-recently-hit entries of that node
first.  Eviction composes with ``repro.mem`` — a cached result's RAM
is owned by the object store replica (and may be spilled); evicting
the cache entry only forgets the memoization, never the object.

A :class:`ResultCache` instance deliberately outlives any single
cluster (``install_cache`` keeps one across ``fresh_cluster()``
rebuilds); that is what makes cold-vs-warm sweeps possible.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Dict, List, Optional, Union

from repro.config import CacheConfig

__all__ = ["CacheEntry", "ResultCache"]


class CacheEntry:
    """Metadata for one memoized result."""

    __slots__ = ("fingerprint", "nbytes", "node", "kind", "hits")

    def __init__(self, fingerprint: str, nbytes: int, node: str, kind: str) -> None:
        self.fingerprint = fingerprint
        self.nbytes = nbytes
        self.node = node
        self.kind = kind
        self.hits = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"CacheEntry({self.fingerprint[:10]}…, kind={self.kind!r}, "
            f"node={self.node!r}, nbytes={self.nbytes}, hits={self.hits})"
        )


class ResultCache:
    """Fingerprint → metadata map with per-node LRU eviction.

    The tracer argument of :meth:`lookup`/:meth:`insert` is the
    *cluster's* tracer — the cache itself is cluster-independent, so
    telemetry flows through whichever run touches it.
    """

    def __init__(self, config: Optional[Union[CacheConfig, str]] = None) -> None:
        if config is None:
            config = CacheConfig(enabled=True)
        elif isinstance(config, str):
            from repro.cache.spec import parse_cache_spec

            config = parse_cache_spec(config)
        self.config = config
        #: fingerprint -> entry, across all nodes.
        self._entries: Dict[str, CacheEntry] = {}
        #: node -> LRU-ordered fingerprints (oldest first).
        self._node_lru: Dict[str, "OrderedDict[str, CacheEntry]"] = {}
        self._node_bytes: Dict[str, int] = {}
        self.hits = 0
        self.misses = 0
        self.inserts = 0
        self.evictions = 0

    # -- policy -------------------------------------------------------------

    @property
    def active(self) -> bool:
        """True when lookups should be consulted at all."""
        return self.config.enabled

    @property
    def lookup_s(self) -> float:
        return self.config.lookup_s

    # -- core operations ----------------------------------------------------

    def lookup(self, fingerprint: str, tracer: Any = None) -> Optional[CacheEntry]:
        """Probe for ``fingerprint``; refresh LRU order and stats.

        Returns the entry on a hit, ``None`` on a miss.  The *caller*
        charges ``lookup_s`` on a hit (misses are free, keeping the
        enabled-but-cold path bit-identical to the seed).
        """
        entry = self._entries.get(fingerprint)
        if entry is None:
            self.misses += 1
            if tracer is not None and tracer.enabled:
                tracer.metrics.counter("cache.miss").inc()
            return None
        self.hits += 1
        entry.hits += 1
        lru = self._node_lru.get(entry.node)
        if lru is not None and fingerprint in lru:
            lru.move_to_end(fingerprint)
        if tracer is not None and tracer.enabled:
            tracer.metrics.counter("cache.hit").inc()
            tracer.metrics.counter("cache.hit.bytes").add(entry.nbytes)
        return entry

    def insert(
        self,
        fingerprint: str,
        nbytes: int = 0,
        node: str = "",
        kind: str = "task",
        tracer: Any = None,
    ) -> List[CacheEntry]:
        """Memoize a result; returns the entries evicted to make room.

        Re-inserting an existing fingerprint refreshes its metadata
        (e.g. after fault-driven re-execution lands the object on a
        different node) without counting as a new insert.
        """
        existing = self._entries.get(fingerprint)
        if existing is not None:
            self._forget(existing)
        entry = CacheEntry(fingerprint, max(0, int(nbytes)), node, kind)
        self._entries[fingerprint] = entry
        lru = self._node_lru.setdefault(node, OrderedDict())
        lru[fingerprint] = entry
        self._node_bytes[node] = self._node_bytes.get(node, 0) + entry.nbytes
        if existing is None:
            self.inserts += 1
            if tracer is not None and tracer.enabled:
                tracer.metrics.counter("cache.insert").inc()
        evicted: List[CacheEntry] = []
        capacity = self.config.capacity_bytes
        if capacity is not None:
            while self._node_bytes.get(node, 0) > capacity and len(lru) > 1:
                victim_fp = next(iter(lru))
                if victim_fp == fingerprint:
                    break
                victim = self._entries.pop(victim_fp)
                self._forget(victim, keep_index=True)
                evicted.append(victim)
                self.evictions += 1
                if tracer is not None and tracer.enabled:
                    tracer.metrics.counter("cache.evict").inc()
                    tracer.metrics.counter("cache.evict.bytes").add(victim.nbytes)
        return evicted

    def peek_node(self, fingerprint: str) -> Optional[str]:
        """Node holding a cached result, without touching stats/LRU.

        Used as a placement affinity hint — probing must not perturb
        hit counts or recency, because the placement decision happens
        before the engine decides whether the lookup is charged.
        """
        if not self.active:
            return None
        entry = self._entries.get(fingerprint)
        return entry.node if entry is not None and entry.node else None

    def invalidate(self, fingerprint: str) -> bool:
        """Drop one entry; returns True if it existed."""
        entry = self._entries.pop(fingerprint, None)
        if entry is None:
            return False
        self._forget(entry, keep_index=True)
        return True

    def clear(self) -> None:
        """Forget every entry (stats are preserved)."""
        self._entries.clear()
        self._node_lru.clear()
        self._node_bytes.clear()

    def _forget(self, entry: CacheEntry, keep_index: bool = False) -> None:
        if not keep_index:
            self._entries.pop(entry.fingerprint, None)
        lru = self._node_lru.get(entry.node)
        if lru is not None:
            lru.pop(entry.fingerprint, None)
        remaining = self._node_bytes.get(entry.node, 0) - entry.nbytes
        self._node_bytes[entry.node] = max(0, remaining)

    # -- introspection ------------------------------------------------------

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, fingerprint: str) -> bool:
        return fingerprint in self._entries

    @property
    def total_bytes(self) -> int:
        return sum(self._node_bytes.values())

    def node_bytes(self, node: str) -> int:
        return self._node_bytes.get(node, 0)

    def stats(self) -> Dict[str, int]:
        """Hit/miss/insert/eviction counters plus occupancy."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "inserts": self.inserts,
            "evictions": self.evictions,
            "entries": len(self._entries),
            "bytes": self.total_bytes,
        }

    @property
    def hit_rate(self) -> float:
        probes = self.hits + self.misses
        return self.hits / probes if probes else 0.0
