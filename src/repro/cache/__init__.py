"""Lineage-keyed result caching: ``repro.cache``.

The paper's four tasks (DICE, WEF, GOTTA, KGE) are re-run many times
per experiment sweep — every scheduler/memory/fault configuration
recomputes identical upstream stages (dataset parsing, embedding
loads, model forward passes) from scratch.  This package adds the
missing reuse layer:

* :class:`ResultCache` — a fingerprint → metadata map with per-node
  LRU eviction; both engines consult it before charging a producer's
  virtual costs and replay the (free) real computation on a hit;
* deterministic fingerprints (:mod:`repro.cache.fingerprint`) built
  from function identity, argument :class:`~repro.rayx.ObjectRef`
  lineage and the config ``epoch`` — a reconstructed object keeps its
  fingerprint, so fault-driven re-execution still hits;
* :class:`repro.config.CacheConfig` — capacity, lookup cost, epoch.

Selecting a cache follows the tracer/injector/scheduler/mem pattern,
with one twist: what is installed is a cache *instance*, which
survives ``fresh_cluster()`` rebuilds — that persistence is the whole
point of a cold-vs-warm sweep:

>>> from repro.cache import cached
>>> with cached("on,cap=2GiB") as cache:
...     cold = run_kge_script(fresh_cluster(), dataset)
...     warm = run_kge_script(fresh_cluster(), dataset)   # hits
>>> cache.hit_rate > 0
True

or per-config via ``ReproConfig(cache=CacheConfig(enabled=True))``
(a fresh per-cluster instance), or from the command line with
``python -m repro fig13c --cache on`` (``python -m repro cache``
prints the spec grammar).

With the default config the cache is dormant and every timing stays
bit-identical to the seed — pinned by ``tests/cache/test_timing_pin.py``
the same way ``repro.obs``/``repro.faults``/``repro.sched``/
``repro.mem`` are.  Enabled-but-cold runs are *also* bit-identical:
misses charge nothing.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator, Optional, Union

from repro.cache.cache import CacheEntry, ResultCache
from repro.cache.fingerprint import (
    combine,
    fingerprint_function,
    fingerprint_value,
)
from repro.cache.spec import describe_cache, parse_cache_spec
from repro.config import CacheConfig

__all__ = [
    "CacheConfig",
    "CacheEntry",
    "ResultCache",
    "combine",
    "fingerprint_function",
    "fingerprint_value",
    "parse_cache_spec",
    "describe_cache",
    "install_cache",
    "uninstall_cache",
    "current_cache",
    "cached",
]

#: The globally installed cache instance, if any (see :func:`install_cache`).
_installed: Optional[ResultCache] = None


def _coerce(cache_or_spec: Union[ResultCache, CacheConfig, str]) -> ResultCache:
    if isinstance(cache_or_spec, ResultCache):
        return cache_or_spec
    if isinstance(cache_or_spec, CacheConfig):
        return ResultCache(cache_or_spec)
    return ResultCache(parse_cache_spec(cache_or_spec))


def install_cache(
    cache_or_spec: Union[ResultCache, CacheConfig, str]
) -> ResultCache:
    """Make a cache the default for clusters built afterwards.

    Accepts a :class:`ResultCache` instance, a :class:`CacheConfig` or
    a spec string (validated eagerly, so a typo fails at install time
    rather than mid-run).  The same instance is shared by every
    subsequent cluster — re-running a task on a fresh cluster hits.
    """
    global _installed
    cache = _coerce(cache_or_spec)
    _installed = cache
    return cache


def uninstall_cache() -> None:
    """Clear the globally installed cache (back to the dormant default)."""
    global _installed
    _installed = None


def current_cache() -> Optional[ResultCache]:
    """The globally installed cache instance, or None."""
    return _installed


@contextmanager
def cached(
    cache_or_spec: Union[ResultCache, CacheConfig, str] = "on"
) -> Iterator[ResultCache]:
    """Install a result cache for the duration of a ``with`` block.

    >>> with cached(CacheConfig(enabled=True)) as cache:
    ...     run = run_kge_script(fresh_cluster(), dataset)
    """
    global _installed
    cache = _coerce(cache_or_spec)
    previous = _installed
    _installed = cache
    try:
        yield cache
    finally:
        _installed = previous
