"""Compact CLI specs for cache policies: ``--cache "on,cap=1GiB"``.

A spec is a comma-separated list of flags and ``key=value`` pairs:

=============  ===================================================
``on``         enable lineage-keyed result caching
``off``        keep the cache dormant (the seed path)
``cap=SIZE``   per-node capacity for cached entries (``1GiB``)
``lookup=S``   virtual seconds charged per cache *hit* (0.0001)
``epoch=N``    generation counter; bump to invalidate everything
=============  ===================================================

Sizes use the same grammar as ``--mem`` (``KiB``/``MiB``/``GiB`` or
plain bytes).  ``repro cache SPEC`` prints the policy a spec expands
to.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Any, Dict

from repro.cache.fingerprint import combine
from repro.config import CacheConfig
from repro.errors import CacheSpecError, MemSpecError
from repro.mem.spec import format_size, parse_size

__all__ = ["parse_cache_spec", "describe_cache"]


def parse_cache_spec(spec: str) -> CacheConfig:
    """Parse a ``--cache`` spec string into a :class:`CacheConfig`.

    >>> parse_cache_spec("on,cap=1GiB").enabled
    True
    """
    text = spec.strip()
    if not text:
        raise CacheSpecError("empty cache spec")
    kwargs: Dict[str, Any] = {}
    for part in text.split(","):
        part = part.strip()
        if not part:
            raise CacheSpecError(f"empty fragment in cache spec {spec!r}")
        if "=" not in part:
            flag = part.lower()
            if flag == "on":
                kwargs["enabled"] = True
            elif flag == "off":
                kwargs["enabled"] = False
            else:
                raise CacheSpecError(
                    f"unknown cache spec flag {part!r} (want 'on', 'off' or "
                    "key=value)"
                )
            continue
        key, _, value = part.partition("=")
        key = key.strip().lower()
        value = value.strip()
        try:
            if key == "cap":
                try:
                    kwargs["capacity_bytes"] = parse_size(value)
                except MemSpecError as exc:
                    raise CacheSpecError(str(exc)) from None
            elif key == "lookup":
                kwargs["lookup_s"] = float(value)
            elif key == "epoch":
                kwargs["epoch"] = int(value)
            else:
                raise CacheSpecError(f"unknown cache spec key {key!r}")
        except ValueError:
            raise CacheSpecError(
                f"bad value for cache spec key {key!r}: {value!r}"
            ) from None
    try:
        return replace(CacheConfig(), **kwargs)
    except ValueError as exc:
        raise CacheSpecError(str(exc)) from None


def describe_cache(config: CacheConfig) -> str:
    """Aligned text description of a cache policy (the CLI's output)."""
    lines = [
        "cache policy: "
        + (
            "lineage-keyed result caching ON"
            if config.enabled
            else "dormant (seed path)"
        ),
        f"  per-node capacity  "
        + (
            format_size(config.capacity_bytes)
            if config.capacity_bytes is not None
            else "unbounded"
        ),
        f"  hit lookup cost    {config.lookup_s * 1e3:.3f}ms",
        f"  epoch              {config.epoch}",
        f"  key prefix         {combine('task', config.epoch)[:12]}…",
    ]
    if config.enabled:
        lines.append(
            "  (misses charge nothing: an enabled-but-cold run stays "
            "bit-identical to the seed)"
        )
    return "\n".join(lines)
