"""Regenerate every table and figure of the paper's evaluation.

A thin wrapper around the package CLI (``python -m repro``): runs all
ten experiment reproductions and prints each report with the paper's
numbers side by side.  ``--quick`` shrinks the dataset scales.

Run:  python examples/reproduce_paper.py [--quick] [experiment ...]

e.g.  python examples/reproduce_paper.py --quick fig13a table1
"""

import sys

from repro.cli import main

if __name__ == "__main__":
    sys.exit(main())
