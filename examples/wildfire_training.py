"""Model training: the paper's WEF ensemble on wildfire tweets.

Fine-tunes the four climate-framing classifiers under both paradigms,
shows that they learn the same models (identical SGD trajectory), and
evaluates them on held-out tweets.

Run:  python examples/wildfire_training.py
"""

from repro.datasets import FRAMINGS, generate_wildfire_tweets, train_test_split
from repro.ml import accuracy, f1_score
from repro.tasks import fresh_cluster
from repro.tasks.wef import run_wef_script, run_wef_workflow


def main():
    tweets = generate_wildfire_tweets(num_tweets=400, seed=11)
    train, test = train_test_split(tweets, train_fraction=0.8)
    print(f"corpus: {len(train)} training / {len(test)} held-out tweets\n")

    script = run_wef_script(fresh_cluster(), train)
    workflow = run_wef_workflow(fresh_cluster(), train)

    print("=== loss curves (per framing model) ===")
    by_model = {}
    for row in script.output:
        by_model.setdefault(row["model_name"], []).append(row["loss"])
    for framing, losses in by_model.items():
        curve = " -> ".join(f"{loss:.3f}" for loss in losses)
        print(f"  {framing:28s} {curve}")

    print("\n=== held-out evaluation (workflow-trained models) ===")
    for framing in FRAMINGS:
        model = workflow.extras["models"][framing]
        truth = [t.label_of(framing) for t in test]
        predictions = [model.predict(t.text) for t in test]
        print(
            f"  {framing:28s} accuracy={accuracy(truth, predictions):.2f} "
            f"f1={f1_score(truth, predictions):.2f}"
        )

    print(f"\nscript paradigm:   {script.elapsed_s:8.1f} virtual seconds")
    print(f"workflow paradigm: {workflow.elapsed_s:8.1f} virtual seconds")
    print(
        "-> nearly identical (paper Fig 13b): training is sequential "
        "single-core SGD on both platforms; neither paradigm can "
        "parallelize it."
    )


if __name__ == "__main__":
    main()
