"""Quickstart: the two paradigms side by side on one toy pipeline.

Build the same filter-and-count analysis twice — as a script-paradigm
driver on the Ray-like runtime, and as a workflow DAG on the
Texera-like engine — run both on the simulated 4-worker cluster, and
compare results, progress reporting and virtual execution time.

Run:  python examples/quickstart.py
"""

from repro.cluster import build_cluster
from repro.relational import FieldType, Schema, Table, column_greater
from repro.rayx import run_script
from repro.sim import Environment
from repro.workflow import Workflow, run_workflow
from repro.workflow.operators import (
    AggregationFunction,
    FilterOperator,
    GroupByOperator,
    SinkOperator,
    TableSource,
)

SCHEMA = Schema.of(
    reading_id=FieldType.INT,
    station=FieldType.STRING,
    temperature=FieldType.FLOAT,
)


def make_readings(n=5000):
    """A synthetic sensor feed: n readings across five stations."""
    rows = []
    for i in range(n):
        rows.append([i, f"station-{i % 5}", 10.0 + (i * 7 % 300) / 10.0])
    return Table.from_rows(SCHEMA, rows)


def script_paradigm(cluster, table):
    """The notebook way: remote tasks + driver-side aggregation."""

    def count_hot(ctx, rows):
        yield from ctx.compute(0.002 * len(rows))
        counts = {}
        for row in rows:
            if row["temperature"] > 30.0:
                counts[row["station"]] = counts.get(row["station"], 0) + 1
        return counts

    def driver(rt):
        chunks = [table.rows[i::4] for i in range(4)]
        refs = [rt.submit(count_hot, chunk) for chunk in chunks]
        partials = yield from rt.get_all(refs)
        totals = {}
        for partial in partials:
            for station, count in partial.items():
                totals[station] = totals.get(station, 0) + count
        return totals

    return run_script(cluster, driver, num_cpus=4)


def workflow_paradigm(cluster, table):
    """The GUI way: a DAG of configured operators."""
    wf = Workflow("hot-readings")
    source = wf.add_operator(TableSource("readings", table, num_workers=2))
    hot = wf.add_operator(
        FilterOperator(
            "keep-hot",
            column_greater("temperature", 30.0),
            num_workers=4,
            per_tuple_work_s=0.002,
        )
    )
    per_station = wf.add_operator(
        GroupByOperator(
            "count-per-station",
            group_key="station",
            aggregation=AggregationFunction.COUNT,
            result_field="hot_readings",
            num_workers=2,
        )
    )
    sink = wf.add_operator(SinkOperator("view-results"))
    wf.link(source, hot)
    wf.link(hot, per_station)
    wf.link(per_station, sink)
    result = run_workflow(cluster, wf)
    return result


def main():
    table = make_readings()

    script_cluster = build_cluster(Environment())
    totals = script_paradigm(script_cluster, table)
    print("script paradigm (Ray-like):")
    print(f"  hot readings per station: {dict(sorted(totals.items()))}")
    print(f"  virtual time: {script_cluster.env.now:.2f}s\n")

    workflow_cluster = build_cluster(Environment())
    result = workflow_paradigm(workflow_cluster, table)
    print("workflow paradigm (Texera-like):")
    for row in result.table().sort_by("station"):
        print(f"  {row['station']}: {row['hot_readings']}")
    print(f"  virtual time: {result.elapsed_s:.2f}s")
    print("\noperator progress board (the 'GUI' view, paper Fig 9):")
    for line in result.progress.describe():
        print(f"  {line}")

    workflow_counts = {
        row["station"]: row["hot_readings"] for row in result.table()
    }
    assert workflow_counts == totals, "paradigms disagree!"
    print("\nboth paradigms computed identical results.")


if __name__ == "__main__":
    main()
