"""Clinical data wrangling: the paper's DICE task end to end.

Generates a synthetic MACCROBAT corpus (clinical case reports with
BRAT-style annotations), runs the DICE event-extraction wrangle under
both paradigms, verifies they agree, and shows why the workflow's
pipelined execution wins this task (paper Fig 13a).

Run:  python examples/clinical_wrangling.py
"""

from repro.datasets import generate_maccrobat
from repro.storage import serialize_annotations
from repro.tasks import fresh_cluster
from repro.tasks.dice import run_dice_script, run_dice_workflow

NUM_REPORTS = 50


def main():
    reports = generate_maccrobat(num_docs=NUM_REPORTS, seed=7)

    print("=== a sample case report (text file) ===")
    sample = reports[0]
    print(sample.text[:240], "...\n")
    print("=== its annotation file (BRAT format, paper Fig 3) ===")
    print("\n".join(serialize_annotations(sample.annotations).splitlines()[:8]))
    print("...\n")

    script = run_dice_script(fresh_cluster(), reports)
    workflow = run_dice_workflow(fresh_cluster(), reports)

    print("=== MACCROBAT-EE output (first 5 rows) ===")
    for row in script.output.head(5):
        print(
            f"  [{row['doc_id']} s{row['sentence_index']}] "
            f"{row['trigger_type']}={row['trigger_text']!r} "
            f"args={row['arg_role']}:{row['arg_text']!r}"
        )

    same = sorted(map(repr, script.output)) == sorted(map(repr, workflow.output))
    print(f"\nparadigms agree on all {len(script.output)} rows: {same}")

    print(f"\nscript paradigm:   {script.elapsed_s:7.2f} virtual seconds")
    print(f"workflow paradigm: {workflow.elapsed_s:7.2f} virtual seconds")
    speedup = (script.elapsed_s - workflow.elapsed_s) / workflow.elapsed_s
    print(
        f"-> the workflow is {speedup:.0%} faster: its per-document stages "
        "pipeline, while the notebook cells run stage after stage "
        "(paper Section IV-E, Fig 13a)."
    )

    print("\n=== scaling the workers (paper Fig 14a) ===")
    for workers in (1, 2, 4):
        s = run_dice_script(fresh_cluster(), reports, num_cpus=workers)
        w = run_dice_workflow(fresh_cluster(), reports, num_workers=workers)
        print(
            f"  {workers} worker(s): script {s.elapsed_s:7.2f}s   "
            f"workflow {w.elapsed_s:7.2f}s"
        )


if __name__ == "__main__":
    main()
