"""Multi-step inference: the paper's KGE product recommendation task.

Builds a product catalog + TransE knowledge-graph model, runs the
filter -> join -> score -> rank -> reverse-lookup pipeline under both
paradigms, then demonstrates the paper's two workflow-side experiments:
operator-count fusion (Fig 12b) and the Python-vs-Scala join (Table I).

Run:  python examples/product_recommendation.py
"""

from repro.tasks import fresh_cluster
from repro.tasks.kge import (
    STAGE_FUSIONS,
    make_kge_dataset,
    run_kge_script,
    run_kge_workflow,
)

# Reduced scale so the example runs in seconds; mechanisms are
# identical at the paper's 6.8k/68k scales (see benchmarks/).
NUM_CANDIDATES = 3000
UNIVERSE = 5000


def main():
    dataset = make_kge_dataset(NUM_CANDIDATES, universe_size=UNIVERSE)
    print(
        f"catalog: {len(dataset.universe)} products "
        f"({NUM_CANDIDATES} candidates), user={dataset.user_id}\n"
    )

    script = run_kge_script(fresh_cluster(), dataset)
    workflow = run_kge_workflow(fresh_cluster(), dataset)

    print("=== top recommendations (reverse-looked-up from embeddings) ===")
    for row in script.output.head(5):
        print(
            f"  #{row['rank']}: {row['name']:14s} ({row['product_id']}) "
            f"score={row['score']:.3f}"
        )
    same = script.output.to_dicts() == workflow.output.to_dicts()
    print(f"\nparadigms agree: {same}")

    print(f"\nscript paradigm:   {script.elapsed_s:7.2f} virtual seconds")
    print(f"workflow paradigm: {workflow.elapsed_s:7.2f} virtual seconds")
    print(
        "-> the script wins KGE (paper Fig 13c): per-tuple Python-UDF "
        "execution and serialization cost the workflow ~30-45%, while "
        "the notebook calls vectorized pandas/numpy steps."
    )

    print("\n=== fusing the pipeline into 1-6 operators (paper Fig 12b) ===")
    for count in sorted(STAGE_FUSIONS):
        run = run_kge_workflow(fresh_cluster(), dataset, num_processing_ops=count)
        stages = " | ".join("+".join(g) for g in STAGE_FUSIONS[count])
        print(f"  {count} op(s): {run.elapsed_s:7.2f}s   [{stages}]")
    print(
        "-> more operators pipeline better, until splitting a "
        "non-bottleneck stage just adds overhead."
    )

    print("\n=== swapping the Python join for 9 Scala operators (Table I) ===")
    for candidates in (300, NUM_CANDIDATES):
        subset = make_kge_dataset(candidates, universe_size=UNIVERSE)
        python = run_kge_workflow(fresh_cluster(), subset, num_processing_ops=3)
        scala = run_kge_workflow(
            fresh_cluster(), subset, num_processing_ops=3, join_language="scala"
        )
        gain = (python.elapsed_s - scala.elapsed_s) / scala.elapsed_s
        print(
            f"  {candidates:5d} candidates: python {python.elapsed_s:7.2f}s   "
            f"scala {scala.elapsed_s:7.2f}s   (scala {gain:+.0%})"
        )
    print(
        "-> Scala streams the embedding table far faster, but that saving "
        "is a *fixed* cost (the table is the whole universe): at larger "
        "candidate counts the advantage vanishes (paper Table I)."
    )


if __name__ == "__main__":
    main()
