"""Benchmark: generated-workload scenarios across both paradigms.

Runs the three generated task families (``stream``, ``smallsteps``,
``raster`` — :mod:`repro.gen.families`) under the pipelined workflow
engine and the Ray-like script runtime, from the *same* spec document,
and records per family:

* virtual elapsed time under each paradigm and their ratio (the
  paradigm gap this repo exists to measure);
* the collected row count, with the row-multiset identity asserted —
  a gap number is meaningless if the answers differ;
* wall-clock seconds per run (the control-plane overhead an analyst
  pays to simulate the family).

A random-DAG sweep rides along: ``RANDOM_SEEDS`` seeded specs from
:func:`repro.gen.random_spec` must each validate, compile to both
paradigms and produce identical row multisets.

Results go to ``BENCH_scenarios.json`` at the repository root in the
stable ``benchmark`` / ``schema`` / ``config`` / ``results`` shape the
other ``BENCH_*.json`` documents use.

Uses plain pytest so CI can smoke it, or directly:

    PYTHONPATH=src python benchmarks/bench_scenarios.py --quick
"""

import json
import sys
import time
from pathlib import Path

#: Repository root: where BENCH_scenarios.json lands (tracked by git).
REPO_ROOT = Path(__file__).resolve().parent.parent

#: Schema version of BENCH_scenarios.json; bump on incompatible changes.
BENCH_SCHEMA = 1

#: Family scale for the recorded document.
SCALE = 1.0

#: Random-DAG sweep width (the acceptance bar: all must row-agree).
RANDOM_SEEDS = 25

#: Reduced scale for CI smoke (--quick): skips writing the document.
SCALE_QUICK = 0.5
RANDOM_SEEDS_QUICK = 5

FAMILY_NAMES = ("stream", "smallsteps", "raster")


def run_families(scale: float) -> dict:
    """Both paradigms per family; asserts row identity."""
    from repro.gen import run_family

    cells = {}
    for family in FAMILY_NAMES:
        cell = {}
        rows = {}
        for paradigm in ("workflow", "script"):
            started = time.perf_counter()
            run = run_family(family, seed=0, scale=scale, paradigm=paradigm)
            cell[f"{paradigm}_s"] = run.elapsed_s
            cell[f"{paradigm}_wall_s"] = time.perf_counter() - started
            rows[paradigm] = run.rows
        cell["rows"] = len(rows["workflow"])
        cell["rows_identical"] = rows["workflow"] == rows["script"]
        cell["gap_ratio"] = cell["workflow_s"] / cell["script_s"]
        cells[family] = cell
    return cells


def run_random_sweep(seeds: int) -> dict:
    """Validate + compile + row-diff ``seeds`` random specs."""
    import repro.gen.operators  # noqa: F401  (registers custom types)
    from repro.cluster import build_cluster
    from repro.gen import random_spec
    from repro.rayx.compile import compile_script_plan
    from repro.sim import Environment
    from repro.workflow import run_workflow
    from repro.workflow.spec import WorkflowSpec, build_workflow

    def multiset(table):
        return sorted(tuple(map(str, row.values)) for row in table)

    agreed = 0
    operators = 0
    for seed in range(seeds):
        spec = WorkflowSpec.from_json(random_spec(seed))
        operators += len(spec.operators)
        result = run_workflow(build_cluster(Environment()), build_workflow(spec))
        tables = compile_script_plan(build_workflow(spec)).run(
            cluster=build_cluster(Environment())
        )
        if all(
            multiset(result.results[sink_id]) == multiset(table)
            for sink_id, table in tables.items()
        ):
            agreed += 1
    return {
        "seeds": seeds,
        "agreed": agreed,
        "all_identical": agreed == seeds,
        "mean_operators": operators / seeds,
    }


def bench_document(scale: float, cells: dict, sweep: dict) -> dict:
    """The stable BENCH_scenarios.json document."""
    return {
        "benchmark": "scenarios",
        "schema": BENCH_SCHEMA,
        "config": {"scale": scale, "seed": 0, "random_seeds": sweep["seeds"]},
        "results": {"families": cells, "random": sweep},
    }


def validate_document(doc: dict) -> None:
    """Schema check for BENCH_scenarios.json (used by the CI smoke job)."""
    assert doc["benchmark"] == "scenarios"
    assert doc["schema"] == BENCH_SCHEMA
    families = doc["results"]["families"]
    assert set(families) == set(FAMILY_NAMES)
    for name, cell in families.items():
        for key in (
            "workflow_s", "script_s", "gap_ratio", "rows", "rows_identical",
        ):
            assert key in cell, f"{name} missing {key}"
        assert cell["rows_identical"] is True, f"{name}: paradigms disagree"
        assert cell["workflow_s"] > 0 and cell["script_s"] > 0
        assert cell["rows"] > 0, f"{name}: empty result"
    sweep = doc["results"]["random"]
    assert sweep["all_identical"] is True, "random sweep found a mismatch"
    assert sweep["agreed"] == sweep["seeds"]


def bench_table(doc: dict) -> str:
    lines = ["generated workloads: paradigm gap per family (virtual seconds)"]
    for name, cell in doc["results"]["families"].items():
        lines.append(
            f"  {name:<12} workflow {cell['workflow_s']:.3f}s, "
            f"script {cell['script_s']:.3f}s, gap "
            f"{cell['gap_ratio']:.2f}x, {cell['rows']} rows "
            f"{'identical' if cell['rows_identical'] else 'MISMATCH'}"
        )
    sweep = doc["results"]["random"]
    lines.append(
        f"  random sweep {sweep['agreed']}/{sweep['seeds']} seeds "
        f"row-identical (mean {sweep['mean_operators']:.1f} operators)"
    )
    return "\n".join(lines)


# -- pytest entry points -----------------------------------------------------


def test_families_agree_and_record_bench(results_dir):
    """The acceptance bar: every family row-identical across paradigms,
    the 25-seed random sweep clean, and BENCH_scenarios.json recorded."""
    cells = run_families(SCALE)
    sweep = run_random_sweep(RANDOM_SEEDS)
    doc = bench_document(SCALE, cells, sweep)
    validate_document(doc)
    (REPO_ROOT / "BENCH_scenarios.json").write_text(
        json.dumps(doc, indent=2) + "\n", encoding="utf-8"
    )
    (results_dir / "scenarios.txt").write_text(
        bench_table(doc) + "\n", encoding="utf-8"
    )
    print()
    print(bench_table(doc))


def test_families_are_deterministic():
    """Same scale, same virtual timings and rows — bit for bit."""
    first = run_families(SCALE_QUICK)
    second = run_families(SCALE_QUICK)
    for family in FAMILY_NAMES:
        assert first[family]["workflow_s"] == second[family]["workflow_s"]
        assert first[family]["script_s"] == second[family]["script_s"]
        assert first[family]["rows"] == second[family]["rows"]


def test_quick_document_passes_schema_validation():
    cells = run_families(SCALE_QUICK)
    sweep = run_random_sweep(RANDOM_SEEDS_QUICK)
    validate_document(bench_document(SCALE_QUICK, cells, sweep))


def main(argv=None):
    """CI smoke entry: ``python benchmarks/bench_scenarios.py --quick``."""
    import argparse

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true",
        help="reduced scale and sweep; skips writing BENCH_scenarios.json",
    )
    args = parser.parse_args(argv)
    scale = SCALE_QUICK if args.quick else SCALE
    seeds = RANDOM_SEEDS_QUICK if args.quick else RANDOM_SEEDS
    cells = run_families(scale)
    sweep = run_random_sweep(seeds)
    doc = bench_document(scale, cells, sweep)
    print(bench_table(doc))
    try:
        validate_document(doc)
    except AssertionError as exc:
        print(f"FAIL: {exc}", file=sys.stderr)
        return 1
    if not args.quick:
        (REPO_ROOT / "BENCH_scenarios.json").write_text(
            json.dumps(doc, indent=2) + "\n", encoding="utf-8"
        )
        print(f"\nwrote {REPO_ROOT / 'BENCH_scenarios.json'}")
    print("scenarios smoke OK: every family and seed row-identical")
    return 0


if __name__ == "__main__":
    sys.exit(main())
