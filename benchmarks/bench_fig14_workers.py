"""Benchmark E4: the paper's worker-scaling experiment (Fig 14a-c)."""

from repro.experiments import run_fig14a, run_fig14b, run_fig14c


def _by_x(report, series):
    return {row.x: row.measured for row in report.series(series)}


def test_fig14a_dice_workers(benchmark, record_report):
    report = benchmark.pedantic(run_fig14a, rounds=1, iterations=1)
    record_report(report)
    script = _by_x(report, "script")
    workflow = _by_x(report, "workflow")
    for count in (1, 2, 4):
        # Paper: Texera outperforms the script at every worker count.
        assert workflow[count] < script[count]
    # Both decrease with workers; the script closes part of the gap.
    assert script[4] < script[2] < script[1]
    assert workflow[4] < workflow[2] < workflow[1]
    assert script[4] / workflow[4] < script[1] / workflow[1]


def test_fig14b_gotta_workers(benchmark, record_report):
    report = benchmark.pedantic(run_fig14b, rounds=1, iterations=1)
    record_report(report)
    script = _by_x(report, "script")
    workflow = _by_x(report, "workflow")
    for count in (1, 2, 4):
        assert workflow[count] < script[count]
    assert script[4] < script[2] < script[1]
    assert workflow[4] < workflow[2] < workflow[1]
    # Paper: the script recovers ~70% of the relative difference.
    assert script[4] / workflow[4] < script[1] / workflow[1]


def test_fig14c_kge_workers(benchmark, record_report):
    report = benchmark.pedantic(run_fig14c, rounds=1, iterations=1)
    record_report(report)
    script = _by_x(report, "script")
    workflow = _by_x(report, "workflow")
    for count in (1, 2, 4):
        # Paper: the script consistently outperforms the workflow.
        assert script[count] < workflow[count]
    # Near-linear scaling on both sides (paper: "intuitive reductions").
    assert script[1] / script[4] > 2.5
    assert workflow[1] / workflow[4] > 2.5
