"""Ablation benchmarks for the design choices DESIGN.md calls out.

Each ablation switches one mechanism off (or swaps one design) and
shows which reproduced result depends on it — evidence that the
paper's findings come from the modeled mechanisms rather than from
per-experiment constant tuning.
"""

import dataclasses

from repro.config import default_config
from repro.datasets import generate_fsqa, generate_maccrobat
from repro.metrics import ExperimentReport
from repro.tasks import fresh_cluster
from repro.tasks.dice import run_dice_workflow
from repro.tasks.gotta import run_gotta_script, run_gotta_workflow
from repro.tasks.kge import make_kge_dataset, run_kge_workflow


def test_dice_document_vs_relational_dag(benchmark, record_report):
    """DESIGN: the paper-style per-document DAG avoids blocking joins.

    The relational DAG's two global hash joins gate probing on full
    upstream completion; the document style pipelines end to end.
    """

    def run():
        report = ExperimentReport(
            "ablation-dice-style",
            "DICE workflow: document-bundle DAG vs relational DAG",
            x_label="file pairs",
        )
        reports = generate_maccrobat(num_docs=100, seed=7)
        document = run_dice_workflow(fresh_cluster(), reports, style="document")
        report.add("document-style", 100, document.elapsed_s)
        relational = run_dice_workflow(fresh_cluster(), reports, style="relational")
        report.add("relational-style", 100, relational.elapsed_s)
        return report

    report = benchmark.pedantic(run, rounds=1, iterations=1)
    record_report(report)
    (document,) = report.measured_series("document-style")
    (relational,) = report.measured_series("relational-style")
    assert document < relational


def test_kge_batch_size_pipelining_grain(benchmark, record_report):
    """Engine: channel batch size trades overhead against pipelining.

    Tiny batches multiply per-batch handling costs; huge batches
    coarsen the pipeline.  The default (64) sits near the flat bottom.
    """

    def run():
        report = ExperimentReport(
            "ablation-batch-size",
            "KGE workflow time vs channel batch size",
            x_label="batch size",
        )
        dataset = make_kge_dataset(4000, universe_size=4000)
        for batch_size in (4, 64, 2048):
            config = default_config()
            workflow_config = dataclasses.replace(
                config.workflow, default_batch_size=batch_size
            )
            config = dataclasses.replace(config, workflow=workflow_config)
            run_result = run_kge_workflow(fresh_cluster(config), dataset)
            report.add("workflow", batch_size, run_result.elapsed_s)
        return report

    report = benchmark.pedantic(run, rounds=1, iterations=1)
    record_report(report)
    times = {row.x: row.measured for row in report.series("workflow")}
    # The default batch size beats the tiny-batch extreme, and the
    # huge-batch run loses pipelining overlap.
    assert times[64] <= times[4]
    assert times[64] <= times[2048]


def test_gotta_framework_pinning_ablation(benchmark, record_report):
    """Paper mechanism: Texera's unpinned PyTorch drives the GOTTA win.

    Pinning the workflow's framework to 1 core (Ray-style) removes
    most of the workflow's advantage.
    """

    def run():
        report = ExperimentReport(
            "ablation-gotta-pinning",
            "GOTTA: workflow with unpinned vs 1-core-pinned framework",
            x_label="paragraphs",
        )
        paragraphs = generate_fsqa(num_paragraphs=4, seed=17)
        script = run_gotta_script(fresh_cluster(), paragraphs)
        report.add("script (pinned, reference)", 4, script.elapsed_s)
        unpinned = run_gotta_workflow(fresh_cluster(), paragraphs)
        report.add("workflow unpinned", 4, unpinned.elapsed_s)
        config = default_config()
        workflow_config = dataclasses.replace(
            config.workflow, torch_cores_per_operator=1
        )
        config = dataclasses.replace(config, workflow=workflow_config)
        pinned = run_gotta_workflow(fresh_cluster(config), paragraphs)
        report.add("workflow pinned to 1 core", 4, pinned.elapsed_s)
        return report

    report = benchmark.pedantic(run, rounds=1, iterations=1)
    record_report(report)
    (script,) = report.measured_series("script (pinned, reference)")
    (unpinned,) = report.measured_series("workflow unpinned")
    (pinned,) = report.measured_series("workflow pinned to 1 core")
    assert unpinned < pinned  # pinning hurts
    # Pinned workflow loses most of the advantage over the script.
    assert (script / pinned) < 0.65 * (script / unpinned)


def test_table1_without_cross_language_bridge(benchmark, record_report):
    """Paper mechanism: the per-tuple bridge cost erodes Scala's win.

    With the cross-language per-tuple cost zeroed, the Scala variant
    keeps (even grows) its advantage at scale — the opposite of
    Table I — showing the bridge term is what reproduces the collapse.
    """

    def run():
        report = ExperimentReport(
            "ablation-bridge-cost",
            "KGE Scala advantage with and without the per-tuple bridge",
            x_label="products",
        )
        dataset = make_kge_dataset(6000, universe_size=6000)
        for label, per_tuple in (("with-bridge", None), ("no-bridge", 0.0)):
            config = default_config()
            if per_tuple is not None:
                serialization = dataclasses.replace(
                    config.serialization, cross_language_per_tuple_s=per_tuple
                )
                config = dataclasses.replace(config, serialization=serialization)
            python = run_kge_workflow(
                fresh_cluster(config), dataset, num_processing_ops=3
            )
            scala = run_kge_workflow(
                fresh_cluster(config),
                dataset,
                num_processing_ops=3,
                join_language="scala",
            )
            advantage = (python.elapsed_s - scala.elapsed_s) / scala.elapsed_s
            report.add(label, 6000, advantage * 100, unit="%")
        return report

    report = benchmark.pedantic(run, rounds=1, iterations=1)
    record_report(report)
    (with_bridge,) = report.measured_series("with-bridge")
    (no_bridge,) = report.measured_series("no-bridge")
    assert no_bridge > with_bridge
