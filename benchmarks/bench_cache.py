"""Benchmark: result caching — cold vs steady-state warm on every task.

Runs all four paper tasks under both paradigms three ways: dormant
(the seed), cold (cache installed but empty) and warm (same cache,
fresh cluster), and records the warm speedup.  Warm runs repeat until
the virtual elapsed time reaches a fixed point: pipelined workflow
runs re-batch as hits shift the timeline, so the first warm pass can
be a partial hit — the steady state, not the first pass, is the
number an analyst iterating on an unchanged pipeline actually sees.

Checks the subsystem's guarantees —

* cold runs are bit-identical to dormant runs (misses charge nothing),
* the steady-state warm run is at least 2x faster than cold on every
  task under both engines, and
* warm runs converge: repeated warm re-runs reach a bit-identical
  elapsed time instead of drifting.

Uses plain pytest (no ``benchmark`` fixture) so CI can smoke it with
nothing but pytest, or directly:

    PYTHONPATH=src python benchmarks/bench_cache.py --quick
"""

import sys

from repro.cache import ResultCache, cached
from repro.datasets import generate_fsqa, generate_maccrobat, generate_wildfire_tweets
from repro.experiments.exp_caching import run_caching
from repro.experiments.harness import cached_kge_dataset
from repro.tasks import fresh_cluster
from repro.tasks.dice.script import run_dice_script
from repro.tasks.dice.workflow import run_dice_workflow
from repro.tasks.gotta.script import run_gotta_script
from repro.tasks.gotta.workflow import run_gotta_workflow
from repro.tasks.kge.script import run_kge_script
from repro.tasks.kge.workflow import run_kge_workflow
from repro.tasks.wef.script import run_wef_script
from repro.tasks.wef.workflow import run_wef_workflow

QUICK_DOCS = 40
QUICK_PARAGRAPHS = 1
QUICK_CANDIDATES = 1500
QUICK_UNIVERSE = 4000
QUICK_TWEETS = 40

#: Warm re-runs allowed before we call the timeline non-convergent.
MAX_WARM_RUNS = 10


def task_cases(docs, paragraphs_n, candidates, universe, tweets_n):
    reports = generate_maccrobat(num_docs=docs, seed=7)
    paragraphs = generate_fsqa(num_paragraphs=paragraphs_n, seed=17)
    dataset = cached_kge_dataset(candidates, universe_size=universe)
    tweets = generate_wildfire_tweets(tweets_n, seed=11)
    return [
        ("dice/script", lambda cl: run_dice_script(cl, reports, num_cpus=4)),
        ("dice/workflow", lambda cl: run_dice_workflow(cl, reports, num_workers=4)),
        ("gotta/script", lambda cl: run_gotta_script(cl, paragraphs, num_cpus=4)),
        (
            "gotta/workflow",
            lambda cl: run_gotta_workflow(cl, paragraphs, num_workers=4),
        ),
        ("kge/script", lambda cl: run_kge_script(cl, dataset, num_cpus=4)),
        ("kge/workflow", lambda cl: run_kge_workflow(cl, dataset)),
        ("wef/script", lambda cl: run_wef_script(cl, tweets, num_cpus=4)),
        ("wef/workflow", lambda cl: run_wef_workflow(cl, tweets)),
    ]


def _steady_warm(run_fn, cache):
    """Warm re-run until the elapsed time is a fixed point.

    Returns ``(elapsed, runs)`` where ``runs`` counts warm passes taken
    to converge (1 means the very first warm run was already steady).
    """
    previous = None
    for runs in range(1, MAX_WARM_RUNS + 1):
        elapsed = run_fn(fresh_cluster()).elapsed_s
        if elapsed == previous:
            return elapsed, runs - 1
        previous = elapsed
    return previous, MAX_WARM_RUNS


def cache_speedup_table(cases):
    """Cold vs steady-warm table for every case (the benchmark artifact)."""
    lines = [
        "cache speedups: cold vs steady-state warm (virtual seconds)",
        f"{'task/paradigm':<16} {'cold (s)':>10} {'warm (s)':>10} "
        f"{'speedup':>8} {'runs':>5} {'hits':>6} {'misses':>7}",
    ]
    cells = {}
    for case, run_fn in cases:
        dormant = run_fn(fresh_cluster()).elapsed_s
        cache = ResultCache("on")
        with cached(cache):
            cold = run_fn(fresh_cluster()).elapsed_s
            warm, runs = _steady_warm(run_fn, cache)
        speedup = cold / warm
        cells[case] = {
            "dormant": dormant,
            "cold": cold,
            "warm": warm,
            "runs": runs,
            "speedup": speedup,
        }
        lines.append(
            f"{case:<16} {cold:>10.3f} {warm:>10.3f} {speedup:>7.1f}x "
            f"{runs:>5d} {cache.hits:>6d} {cache.misses:>7d}"
        )
    return "\n".join(lines), cells


def test_cold_run_bit_identical_and_deterministic():
    """Dormant runs repeat bit-identically, and an installed-but-empty
    cache does not move the timeline by a single bit."""
    reports = generate_maccrobat(num_docs=QUICK_DOCS, seed=7)

    def run():
        return run_dice_script(fresh_cluster(), reports, num_cpus=4).elapsed_s

    first, second = run(), run()
    assert first == second, "dormant timeline diverged between runs"
    with cached(ResultCache("on")):
        cold = run()
    assert cold == first, "an empty cache changed the timeline"


def test_warm_runs_converge_to_a_fixed_point():
    """Pipelined workflows re-batch as hits shift the timeline; the
    re-runs must settle on one bit-identical steady state."""
    reports = generate_maccrobat(num_docs=QUICK_DOCS, seed=7)
    cache = ResultCache("on")
    with cached(cache):
        run_dice_workflow(fresh_cluster(), reports, num_workers=4)
        warm, runs = _steady_warm(
            lambda cl: run_dice_workflow(cl, reports, num_workers=4), cache
        )
    assert runs < MAX_WARM_RUNS, "warm workflow timeline never converged"
    assert warm is not None and warm > 0.0


def test_steady_warm_at_least_2x_everywhere(results_dir):
    """The acceptance bar: >=2x on all four tasks, both engines."""
    cases = task_cases(
        QUICK_DOCS, QUICK_PARAGRAPHS, QUICK_CANDIDATES, QUICK_UNIVERSE, QUICK_TWEETS
    )
    table, cells = cache_speedup_table(cases)
    for case, cell in cells.items():
        assert cell["cold"] == cell["dormant"], f"{case}: cold drifted from seed"
        assert cell["speedup"] >= 2.0, (
            f"{case}: steady warm only {cell['speedup']:.2f}x faster"
        )
    (results_dir / "cache_speedups.txt").write_text(table + "\n", encoding="utf-8")
    print()
    print(table)


def test_caching_experiment_quick(results_dir):
    """``run_caching`` asserts cold==dormant, warm<cold, hits>0 and
    identical outputs internally — passing is the acceptance check."""
    report = run_caching(
        num_docs=QUICK_DOCS,
        num_paragraphs=QUICK_PARAGRAPHS,
        num_candidates=QUICK_CANDIDATES,
        universe_size=QUICK_UNIVERSE,
        num_tweets=QUICK_TWEETS,
    )
    speedups = [r for r in report.rows if r.series == "speedup"]
    assert len(speedups) == 8
    assert all(r.measured > 1.0 for r in speedups)
    (results_dir / "caching.txt").write_text(report.to_text() + "\n", encoding="utf-8")
    print()
    print(report.to_text())


def main(argv=None):
    """CI smoke entry point: ``python benchmarks/bench_cache.py --quick``."""
    import argparse

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true", help="reduced dataset scales"
    )
    args = parser.parse_args(argv)
    if args.quick:
        cases = task_cases(
            QUICK_DOCS,
            QUICK_PARAGRAPHS,
            QUICK_CANDIDATES,
            QUICK_UNIVERSE,
            QUICK_TWEETS,
        )
    else:
        cases = task_cases(120, 4, 6800, 68000, 120)
    table, cells = cache_speedup_table(cases)
    print(table)
    drifted = [c for c, cell in cells.items() if cell["cold"] != cell["dormant"]]
    if drifted:
        print(f"FAIL: cold run drifted from seed on: {', '.join(drifted)}",
              file=sys.stderr)
        return 1
    slow = [c for c, cell in cells.items() if cell["speedup"] < 2.0]
    if slow:
        print(f"FAIL: steady warm below 2x on: {', '.join(slow)}", file=sys.stderr)
        return 1
    print("\ncache smoke OK: cold == seed, steady warm >= 2x everywhere")
    return 0


if __name__ == "__main__":
    sys.exit(main())
