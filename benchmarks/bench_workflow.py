"""Benchmark: the logical optimizer — naive vs optimized spec compilation.

Every paper task's workflow now compiles from its committed
``examples/workflows/*.json`` spec; flipping ``workflow.optimize`` in
the config runs the same spec through ``optimize_workflow`` (dead-column
pruning, same-language fusion, cross-language placement hints) before
deployment.  This benchmark runs each task both ways and records the
elapsed-time delta, plus the KGE/Scala serialization seconds the
pruning pass exists to shave.

The deltas are *signed* on purpose.  Fusion trades pipeline parallelism
for fewer channel crossings, so wire-bound relational plans
(``dice_relational``, ``kge_scala``) get faster while compute-parallel
plans (``dice``, ``kge_python``) get slower — the optimizer is a real
trade-off, not a free win, and the numbers say which plans want it.

Checks the subsystem's guarantees —

* the optimizer never changes the answer: every task's rows are
  identical as multisets with the optimizer on and off,
* plans with nothing to rewrite (``gotta``) keep a bit-identical
  timeline, so the config switch alone costs nothing,
* the wire-bound plans (``dice_relational``, ``kge_scala``) get
  strictly faster, and
* KGE/Scala spends strictly fewer virtual seconds in ``serialization``
  spans with the optimizer on.

Results go to ``BENCH_workflow.json`` at the repository root, part of
ROADMAP's tracked ``BENCH_*.json`` series.  Uses plain pytest (no
``benchmark`` fixture) so CI can smoke it with nothing but pytest, or
directly:

    PYTHONPATH=src python benchmarks/bench_workflow.py --quick
"""

import json
import pathlib
import sys
from dataclasses import replace

from repro.config import default_config
from repro.datasets import generate_fsqa, generate_maccrobat, generate_wildfire_tweets
from repro.experiments.harness import cached_kge_dataset
from repro.obs import Tracer
from repro.obs.export import breakdown
from repro.tasks import fresh_cluster
from repro.tasks.dice.workflow import run_dice_workflow
from repro.tasks.gotta.workflow import run_gotta_workflow
from repro.tasks.kge.workflow import run_kge_workflow
from repro.tasks.wef.workflow import run_wef_workflow

QUICK_DOCS = 40
QUICK_PARAGRAPHS = 1
QUICK_CANDIDATES = 1500
QUICK_UNIVERSE = 4000
QUICK_TWEETS = 40

FULL_DOCS = 80
FULL_PARAGRAPHS = 2
FULL_CANDIDATES = 3000
FULL_UNIVERSE = 8000
FULL_TWEETS = 80

#: Cases whose optimized plan must be strictly faster (wire-bound DAGs
#: where pruning/fusion removes channel crossings the plan pays for).
WIRE_BOUND = ("dice_relational", "kge_scala")

#: Case with no rewrite opportunity: its timeline must not move a bit.
UNTOUCHED = "gotta"

#: Repository root: where BENCH_workflow.json lands (tracked by git).
REPO_ROOT = pathlib.Path(__file__).resolve().parents[1]

#: Schema version of BENCH_workflow.json; bump on incompatible changes.
BENCH_SCHEMA = 1

CASE_NAMES = (
    "dice",
    "dice_relational",
    "gotta",
    "kge_python",
    "kge_scala",
    "wef",
)


def optimizing_config():
    config = default_config()
    return replace(config, workflow=replace(config.workflow, optimize=True))


def rows_of(table):
    return sorted(tuple(map(str, row.values)) for row in table)


def task_cases(docs, paragraphs_n, candidates, universe, tweets_n):
    reports = generate_maccrobat(num_docs=docs, seed=7)
    paragraphs = generate_fsqa(num_paragraphs=paragraphs_n, seed=17)
    dataset = cached_kge_dataset(candidates, universe_size=universe)
    tweets = generate_wildfire_tweets(tweets_n, seed=11)
    return [
        ("dice", lambda cl: run_dice_workflow(cl, reports, num_workers=2)),
        (
            "dice_relational",
            lambda cl: run_dice_workflow(
                cl, reports, num_workers=2, style="relational"
            ),
        ),
        ("gotta", lambda cl: run_gotta_workflow(cl, paragraphs, num_workers=2)),
        ("kge_python", lambda cl: run_kge_workflow(cl, dataset)),
        (
            "kge_scala",
            lambda cl: run_kge_workflow(
                cl, dataset, num_processing_ops=3, join_language="scala"
            ),
        ),
        ("wef", lambda cl: run_wef_workflow(cl, tweets)),
    ]


def compare_cases(cases):
    """Naive-vs-optimized table for every case (the benchmark artifact)."""
    lines = [
        "logical optimizer: naive vs optimized (virtual seconds)",
        f"{'task':<16} {'naive (s)':>10} {'optimized':>10} {'delta (s)':>10} "
        f"{'speedup':>8} {'rows':>6}",
    ]
    cells = {}
    for case, run_fn in cases:
        naive = run_fn(fresh_cluster())
        optimized = run_fn(fresh_cluster(optimizing_config()))
        identical = rows_of(naive.output) == rows_of(optimized.output)
        cells[case] = {
            "naive_s": naive.elapsed_s,
            "optimized_s": optimized.elapsed_s,
            "delta_s": naive.elapsed_s - optimized.elapsed_s,
            "speedup": naive.elapsed_s / optimized.elapsed_s,
            "rows": len(naive.output.rows),
            "rows_identical": identical,
        }
        lines.append(
            f"{case:<16} {naive.elapsed_s:>10.3f} {optimized.elapsed_s:>10.3f} "
            f"{cells[case]['delta_s']:>+10.3f} {cells[case]['speedup']:>7.2f}x "
            f"{cells[case]['rows']:>6d}"
        )
    return "\n".join(lines), cells


def kge_serialization_seconds(candidates, universe):
    """Virtual seconds in ``serialization`` spans, optimizer off vs on.

    The Scala-join KGE plan ships embedding rows across a language
    boundary; dead-column pruning narrows what crosses, so the span
    total must strictly drop.
    """
    dataset = cached_kge_dataset(candidates, universe_size=universe)
    seconds = {}
    for mode, config in (("off", None), ("on", optimizing_config())):
        tracer = Tracer()
        run_kge_workflow(
            fresh_cluster(config, tracer=tracer),
            dataset,
            num_processing_ops=3,
            join_language="scala",
        )
        (run,) = breakdown(tracer)
        seconds[mode] = run.category_total("serialization")
    return {
        "off_s": seconds["off"],
        "on_s": seconds["on"],
        "reduction_s": seconds["off"] - seconds["on"],
        "reduction_pct": 100.0 * (1.0 - seconds["on"] / seconds["off"]),
    }


def bench_document(config, cells, serialization):
    """The stable BENCH_workflow.json document."""
    return {
        "benchmark": "workflow",
        "schema": BENCH_SCHEMA,
        "config": config,
        "results": {"tasks": cells, "kge_serialization": serialization},
    }


def validate_document(doc: dict) -> None:
    """Schema check for BENCH_workflow.json (used by the CI smoke job)."""
    assert doc["benchmark"] == "workflow"
    assert doc["schema"] == BENCH_SCHEMA
    tasks = doc["results"]["tasks"]
    assert set(tasks) == set(CASE_NAMES)
    for name, cell in tasks.items():
        for key in (
            "naive_s", "optimized_s", "delta_s", "speedup", "rows",
            "rows_identical",
        ):
            assert key in cell, f"{name} missing {key}"
        assert cell["rows_identical"] is True, f"{name}: optimizer changed rows"
        assert cell["naive_s"] > 0 and cell["rows"] > 0
    for name in WIRE_BOUND:
        assert tasks[name]["delta_s"] > 0, f"{name}: no wire-bound win recorded"
    assert tasks[UNTOUCHED]["naive_s"] == tasks[UNTOUCHED]["optimized_s"]
    ser = doc["results"]["kge_serialization"]
    for key in ("off_s", "on_s", "reduction_s", "reduction_pct"):
        assert key in ser, f"kge_serialization missing {key}"
    assert ser["reduction_s"] > 0, "pruning did not shave serialization time"


def check_cells(cells):
    """The acceptance gates shared by pytest and the CLI entry point."""
    problems = []
    for case, cell in cells.items():
        if not cell["rows_identical"]:
            problems.append(f"{case}: optimizer changed the collected rows")
    for case in WIRE_BOUND:
        if cells[case]["optimized_s"] >= cells[case]["naive_s"]:
            problems.append(f"{case}: wire-bound plan did not get faster")
    if cells[UNTOUCHED]["optimized_s"] != cells[UNTOUCHED]["naive_s"]:
        problems.append(f"{UNTOUCHED}: no-rewrite plan moved with the switch on")
    return problems


# -- pytest entry points -----------------------------------------------------


def test_optimizer_preserves_rows_on_every_task(results_dir):
    cases = task_cases(
        QUICK_DOCS, QUICK_PARAGRAPHS, QUICK_CANDIDATES, QUICK_UNIVERSE, QUICK_TWEETS
    )
    table, cells = compare_cases(cases)
    assert not check_cells(cells), check_cells(cells)
    (results_dir / "workflow_optimizer.txt").write_text(table + "\n", encoding="utf-8")
    print()
    print(table)


def test_kge_serialization_seconds_drop():
    serialization = kge_serialization_seconds(QUICK_CANDIDATES, QUICK_UNIVERSE)
    assert serialization["reduction_s"] > 0
    assert serialization["on_s"] < serialization["off_s"]


def test_quick_document_passes_schema_validation():
    cases = task_cases(
        QUICK_DOCS, QUICK_PARAGRAPHS, QUICK_CANDIDATES, QUICK_UNIVERSE, QUICK_TWEETS
    )
    _, cells = compare_cases(cases)
    serialization = kge_serialization_seconds(QUICK_CANDIDATES, QUICK_UNIVERSE)
    doc = bench_document({"quick": True}, cells, serialization)
    validate_document(doc)


def main(argv=None):
    """CI smoke entry: ``python benchmarks/bench_workflow.py --quick``."""
    import argparse

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="reduced dataset scales; skips writing BENCH_workflow.json",
    )
    args = parser.parse_args(argv)
    if args.quick:
        scales = (
            QUICK_DOCS, QUICK_PARAGRAPHS, QUICK_CANDIDATES, QUICK_UNIVERSE,
            QUICK_TWEETS,
        )
    else:
        scales = (FULL_DOCS, FULL_PARAGRAPHS, FULL_CANDIDATES, FULL_UNIVERSE,
                  FULL_TWEETS)
    docs, paragraphs, candidates, universe, tweets = scales
    table, cells = compare_cases(
        task_cases(docs, paragraphs, candidates, universe, tweets)
    )
    serialization = kge_serialization_seconds(candidates, universe)
    print(table)
    print(
        f"kge_scala serialization: {serialization['off_s']:.3f}s -> "
        f"{serialization['on_s']:.3f}s "
        f"({serialization['reduction_pct']:.1f}% less with pruning)"
    )
    problems = check_cells(cells)
    if serialization["reduction_s"] <= 0:
        problems.append("kge_scala: pruning did not shave serialization time")
    if problems:
        for problem in problems:
            print(f"FAIL: {problem}", file=sys.stderr)
        return 1
    if not args.quick:
        config = {
            "num_docs": docs,
            "num_paragraphs": paragraphs,
            "num_candidates": candidates,
            "universe_size": universe,
            "num_tweets": tweets,
            "num_workers": 2,
        }
        doc = bench_document(config, cells, serialization)
        validate_document(doc)
        (REPO_ROOT / "BENCH_workflow.json").write_text(
            json.dumps(doc, indent=1) + "\n", encoding="utf-8"
        )
        print("wrote BENCH_workflow.json")
    print("\nworkflow smoke OK: identical rows everywhere, wire-bound plans faster")
    return 0


if __name__ == "__main__":
    sys.exit(main())
