"""Benchmark: elasticity's cost-vs-latency trade against a static fleet.

Replays the burst-then-tail traffic of experiment E10 (a heavy 4-vCPU
flood followed by a long 1-vCPU trickle) through two clusters:

* **static-4** — the paper's testbed, four workers for the whole run;
* **elastic** — one worker plus a :class:`repro.elastic.Autoscaler`
  (bounds 1..8) that provisions through the flood and drains back down
  through the tail.

Records, per scenario: worker node-seconds (the cost bill — machines
are billed join-to-retirement), p50/p99 queueing latency, completions
and makespan.  The acceptance gates are E10's: identical completions,
fewer node-seconds for the elastic run, at equal-or-better p99 queue
latency.

Results go to ``BENCH_elastic.json`` at the repository root using the
stable ``benchmark`` / ``schema`` / ``config`` / ``results`` document
shape of the BENCH_* series.  Uses plain pytest so CI can smoke it, or
directly:

    PYTHONPATH=src python benchmarks/bench_elastic.py --quick
"""

import json
import sys
import time
from pathlib import Path

from repro.elastic import elastic_config_to_json
from repro.experiments.exp_elastic import ELASTIC_POLICY, run_scenarios

#: Repository root: where BENCH_elastic.json lands (tracked by git).
REPO_ROOT = Path(__file__).resolve().parent.parent

#: Schema version of BENCH_elastic.json; bump on incompatible changes.
BENCH_SCHEMA = 1

#: The E10 traffic shape: a 12s flood of 4-vCPU jobs at 18/s, then a
#: 1-vCPU trickle tail to 60s — the burst needs more than four workers,
#: the tail wastes most of a static fleet.
TRAFFIC = {
    "flood_s": 12.0,
    "tail_s": 60.0,
    "heavy_rate": 18.0,
    "light_rate": 2.0,
}

#: Reduced scale for CI smoke (--quick): same shape, ~130 jobs.
TRAFFIC_QUICK = {
    "flood_s": 6.0,
    "tail_s": 25.0,
    "heavy_rate": 12.0,
    "light_rate": 2.0,
}

SCENARIOS = ("static-4", "elastic")


def run_bench(traffic: dict):
    """One full two-scenario run; returns (outcomes, wall_seconds)."""
    started = time.perf_counter()
    outcomes = run_scenarios(**traffic)
    wall_s = time.perf_counter() - started
    return outcomes, wall_s


def bench_document(traffic: dict, outcomes: dict, wall_s: float) -> dict:
    """The stable BENCH_elastic.json document."""
    static, elastic = outcomes["static-4"], outcomes["elastic"]
    scenarios = {}
    for label, summary in outcomes.items():
        scenarios[label] = {
            "jobs": summary["jobs"],
            "completed": summary["counts"]["completed"],
            "node_seconds": summary["node_seconds"],
            "p50_queue_s": summary["p50_queue_s"],
            "p99_queue_s": summary["p99_queue_s"],
            "peak_queue_depth": summary["peak_queue_depth"],
            "virtual_makespan_s": summary["virtual_makespan_s"],
        }
    scenarios["elastic"].update(
        {
            "scale_ups": elastic["elastic"]["scale_ups"],
            "scale_downs": elastic["elastic"]["scale_downs"],
            "peak_nodes": elastic["elastic"]["peak_nodes"],
            "final_nodes": elastic["elastic"]["final_nodes"],
        }
    )
    saved = static["node_seconds"] - elastic["node_seconds"]
    return {
        "benchmark": "elastic",
        "schema": BENCH_SCHEMA,
        "config": {
            "traffic": traffic,
            "policy": elastic_config_to_json(ELASTIC_POLICY),
            "static_workers": 4,
        },
        "results": {
            "scenarios": scenarios,
            "node_seconds_saved": saved,
            "node_seconds_saved_pct": 100.0 * saved / static["node_seconds"],
            "p99_queue_delta_s": (
                (elastic["p99_queue_s"] or 0.0)
                - (static["p99_queue_s"] or 0.0)
            ),
            "wall_s": wall_s,
        },
    }


def validate_document(doc: dict) -> None:
    """Schema + gate check for BENCH_elastic.json (CI smoke job)."""
    assert doc["benchmark"] == "elastic"
    assert doc["schema"] == BENCH_SCHEMA
    scenarios = doc["results"]["scenarios"]
    assert set(scenarios) == set(SCENARIOS)
    for label, cell in scenarios.items():
        for key in (
            "jobs", "completed", "node_seconds", "p50_queue_s",
            "p99_queue_s", "peak_queue_depth", "virtual_makespan_s",
        ):
            assert key in cell, f"{label} missing {key}"
        assert cell["completed"] == cell["jobs"], f"{label}: jobs lost"
        assert cell["node_seconds"] > 0
    static, elastic = scenarios["static-4"], scenarios["elastic"]
    assert elastic["completed"] == static["completed"]
    # The acceptance gates: cheaper AND no worse at the tail.
    assert elastic["node_seconds"] < static["node_seconds"]
    assert elastic["p99_queue_s"] <= static["p99_queue_s"]
    assert doc["results"]["node_seconds_saved"] > 0
    assert doc["results"]["p99_queue_delta_s"] <= 0
    assert elastic["scale_ups"] > 0
    assert elastic["scale_downs"] > 0
    assert elastic["peak_nodes"] > 4, "the flood never out-scaled static-4"


def bench_table(doc: dict) -> str:
    scenarios = doc["results"]["scenarios"]
    static, elastic = scenarios["static-4"], scenarios["elastic"]
    results = doc["results"]
    return "\n".join(
        [
            "elasticity vs static fleet (virtual seconds unless noted)",
            f"  completed          {static['completed']} jobs in both runs",
            f"  node-seconds       static {static['node_seconds']:.1f} -> "
            f"elastic {elastic['node_seconds']:.1f} "
            f"({results['node_seconds_saved_pct']:.0f}% saved)",
            f"  p99 queue          static {static['p99_queue_s']:.3f}s -> "
            f"elastic {elastic['p99_queue_s']:.3f}s",
            f"  autoscaler         {elastic['scale_ups']} up / "
            f"{elastic['scale_downs']} down, peak {elastic['peak_nodes']} "
            f"workers, final {elastic['final_nodes']}",
            f"  makespan           static {static['virtual_makespan_s']:.2f}s, "
            f"elastic {elastic['virtual_makespan_s']:.2f}s; "
            f"{results['wall_s']:.2f}s wall for both",
        ]
    )


# -- pytest entry points -----------------------------------------------------


def test_elastic_beats_static_and_records_bench(results_dir):
    """The acceptance bar: fewer node-seconds at equal-or-better p99,
    and the recorded BENCH_elastic.json at the repository root."""
    outcomes, wall_s = run_bench(TRAFFIC)
    doc = bench_document(TRAFFIC, outcomes, wall_s)
    validate_document(doc)
    (REPO_ROOT / "BENCH_elastic.json").write_text(
        json.dumps(doc, indent=2) + "\n", encoding="utf-8"
    )
    (results_dir / "elastic_vs_static.txt").write_text(
        bench_table(doc) + "\n", encoding="utf-8"
    )
    print()
    print(bench_table(doc))


def test_quick_scale_passes_the_same_gates():
    """CI-scale traffic clears the identical acceptance gates."""
    outcomes, wall_s = run_bench(TRAFFIC_QUICK)
    validate_document(bench_document(TRAFFIC_QUICK, outcomes, wall_s))


def test_bench_is_deterministic():
    """Same traffic, same outcomes — bit for bit (wall time aside)."""
    first, _ = run_bench(TRAFFIC_QUICK)
    second, _ = run_bench(TRAFFIC_QUICK)
    assert first == second


def main(argv=None):
    """CI smoke entry: ``python benchmarks/bench_elastic.py --quick``."""
    import argparse

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true",
        help="reduced traffic; skips writing BENCH_elastic.json",
    )
    args = parser.parse_args(argv)
    traffic = TRAFFIC_QUICK if args.quick else TRAFFIC
    outcomes, wall_s = run_bench(traffic)
    doc = bench_document(traffic, outcomes, wall_s)
    print(bench_table(doc))
    try:
        validate_document(doc)
    except AssertionError as exc:
        print(f"FAIL: {exc}", file=sys.stderr)
        return 1
    if not args.quick:
        (REPO_ROOT / "BENCH_elastic.json").write_text(
            json.dumps(doc, indent=2) + "\n", encoding="utf-8"
        )
        print(f"\nwrote {REPO_ROOT / 'BENCH_elastic.json'}")
    print("elastic smoke OK: cheaper than static at equal-or-better p99")
    return 0


if __name__ == "__main__":
    sys.exit(main())
