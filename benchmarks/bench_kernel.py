"""Benchmark: DES-kernel and engine hot-path throughput (events/sec).

Six workloads exercise the layers the kernel fast path touched:

* ``timeout_chain`` — pure timeout scheduling (the tail-deque path);
* ``process_churn`` — process spawn/finish (bootstrap + inline succeed);
* ``resource_contention`` — Resource request/release FIFO churn;
* ``store_pingpong`` — bounded Store put/get with back-pressure;
* ``rayx_submit_storm`` — script-engine submits under an active result
  cache (fingerprint memoization on the submit path);
* ``workflow_rows`` — workflow engine rows through a map pipeline
  (tuple validation, batch sizing, channel bookkeeping).

Each run reports simulated events per wall second — the number of
kernel schedulings divided by the best wall time over ``repeats``
runs — and the speedup against ``BASELINE_EVENTS_PER_S``, the same
workloads measured on the pre-optimization kernel (commit f800a50)
on the same machine, interleaved A/B, best of five.

Results land in ``BENCH_kernel.json`` at the repository root, in the
``BENCH_jobs.json`` document convention (``benchmark`` / ``schema`` /
``config`` / ``results``).

Uses plain pytest so CI can smoke it with nothing but pytest, or
directly:

    PYTHONPATH=src python benchmarks/bench_kernel.py --quick
"""

import json
import math
import sys
import time
from pathlib import Path

from repro.cache import ResultCache, cached
from repro.cache.spec import parse_cache_spec
from repro.cluster import build_cluster
from repro.rayx.runtime import run_script
from repro.relational import FieldType, Schema, Table
from repro.sim import Environment
from repro.sim.resources import Resource, Store
from repro.workflow import Workflow, run_workflow
from repro.workflow.operators import MapOperator, SinkOperator, TableSource

#: Repository root: where BENCH_kernel.json lands (tracked by git).
REPO_ROOT = Path(__file__).resolve().parent.parent

#: Schema version of BENCH_kernel.json; bump on incompatible changes.
BENCH_SCHEMA = 1

#: Pre-optimization kernel throughput (events per wall second), measured
#: on the reference machine at the PR's base commit with this exact
#: harness (scale 1.0, best of five, interleaved A/B on an idle core).
#: Stored so every later run reports an honest speedup without needing
#: the old kernel checked out.
BASELINE_EVENTS_PER_S = {
    "timeout_chain": 603_700.0,
    "process_churn": 502_300.0,
    "resource_contention": 418_700.0,
    "store_pingpong": 439_400.0,
    "rayx_submit_storm": 204_500.0,
    "workflow_rows": 39_000.0,
}


def events_scheduled(env) -> int:
    """Total events the kernel scheduled — the final sequence number."""
    seq = env._sequence
    if isinstance(seq, int):
        return seq
    return next(seq)  # pre-optimization kernel: itertools.count


# -- pure-kernel workloads ---------------------------------------------------


def timeout_chain(scale=1.0):
    n = int(20000 * scale)
    env = Environment()

    def proc(env, n):
        for _ in range(n):
            yield env.timeout(1.0)

    for _ in range(10):
        env.process(proc(env, n))
    env.run()
    return env


def process_churn(scale=1.0):
    n = int(40000 * scale)
    env = Environment()

    def leaf(env):
        yield env.timeout(0.5)
        return 1

    def spawner(env, n):
        for _ in range(n):
            yield env.process(leaf(env))

    env.process(spawner(env, n))
    env.run()
    return env


def resource_contention(scale=1.0):
    rounds = int(4000 * scale)
    env = Environment()
    res = Resource(env, capacity=2)

    def worker(env, res, rounds):
        for _ in range(rounds):
            yield res.request()
            yield env.timeout(0.25)
            res.release()

    for _ in range(8):
        env.process(worker(env, res, rounds))
    env.run()
    return env


def store_pingpong(scale=1.0):
    n = int(20000 * scale)
    env = Environment()
    store = Store(env, capacity=8)

    def producer(env, store, n):
        for i in range(n):
            yield store.put(i)

    def consumer(env, store, n):
        for _ in range(n):
            yield store.get()

    for _ in range(2):
        env.process(producer(env, store, n))
        env.process(consumer(env, store, n))
    env.run()
    return env


# -- engine hot-path workloads ----------------------------------------------


def _tiny(ctx, a, b):
    return a + b


def rayx_submit_storm(scale=1.0):
    n = int(2000 * scale)
    with cached(ResultCache(parse_cache_spec("on,cap=1MB"))):
        cluster = build_cluster(Environment())

        def driver(rt):
            refs = [rt.submit(_tiny, i, i + 1) for i in range(n)]
            values = yield from rt.get_all(refs)
            return len(values)

        run_script(cluster, driver, num_cpus=4)
    return cluster.env


def workflow_rows(scale=1.0):
    n = int(20000 * scale)
    schema = Schema.of(id=FieldType.INT, score=FieldType.FLOAT)
    table = Table.from_rows(schema, [[i, (i % 10) / 10.0] for i in range(n)])

    def bump(row):
        return [row["id"], row["score"] + 1.0]

    wf = Workflow("rows")
    src = wf.add_operator(TableSource("src", table))
    mapper = wf.add_operator(MapOperator("bump", schema, bump))
    sink = wf.add_operator(SinkOperator("sink"))
    wf.link(src, mapper)
    wf.link(mapper, sink)
    cluster = build_cluster(Environment())
    run_workflow(cluster, wf)
    return cluster.env


WORKLOADS = [
    ("timeout_chain", timeout_chain),
    ("process_churn", process_churn),
    ("resource_contention", resource_contention),
    ("store_pingpong", store_pingpong),
    ("rayx_submit_storm", rayx_submit_storm),
    ("workflow_rows", workflow_rows),
]


def run_workload(fn, scale: float, repeats: int):
    """Best wall time over ``repeats`` runs; returns (events, wall_s)."""
    fn(0.02)  # warmup: imports, code objects, allocator
    best = None
    events = 0
    for _ in range(repeats):
        started = time.perf_counter()
        env = fn(scale)
        wall_s = time.perf_counter() - started
        events = events_scheduled(env)
        best = wall_s if best is None or wall_s < best else best
    return events, best


def run_suite(scale: float, repeats: int) -> dict:
    """All workloads; returns the per-workload measurement map."""
    measurements = {}
    for name, fn in WORKLOADS:
        events, wall_s = run_workload(fn, scale, repeats)
        measurements[name] = {
            "events": events,
            "wall_s": round(wall_s, 6),
            "events_per_s": round(events / wall_s, 1),
            "baseline_events_per_s": BASELINE_EVENTS_PER_S[name],
            "speedup": round(events / wall_s / BASELINE_EVENTS_PER_S[name], 3),
        }
    return measurements


def bench_document(scale: float, repeats: int, measurements: dict) -> dict:
    """The stable BENCH_kernel.json document."""
    total_events = sum(m["events"] for m in measurements.values())
    total_wall = sum(m["wall_s"] for m in measurements.values())
    speedups = [m["speedup"] for m in measurements.values()]
    geomean = math.exp(sum(math.log(s) for s in speedups) / len(speedups))
    return {
        "benchmark": "kernel",
        "schema": BENCH_SCHEMA,
        "config": {
            "scale": scale,
            "repeats": repeats,
            "workloads": [name for name, _ in WORKLOADS],
        },
        "results": {
            "workloads": measurements,
            "total_events": total_events,
            "total_wall_s": round(total_wall, 6),
            "aggregate_events_per_s": round(total_events / total_wall, 1),
            "speedup_geomean": round(geomean, 3),
        },
    }


def bench_table(doc: dict) -> str:
    lines = ["kernel throughput (simulated events per wall second)"]
    for name, m in doc["results"]["workloads"].items():
        lines.append(
            f"  {name:20s} {m['events']:>9d} events  {m['wall_s']:>8.3f}s"
            f"  {m['events_per_s'] / 1e3:>8.1f}k ev/s  {m['speedup']:>5.2f}x"
        )
    results = doc["results"]
    lines.append(
        f"  {'aggregate':20s} {results['total_events']:>9d} events"
        f"  {results['total_wall_s']:>8.3f}s"
        f"  {results['aggregate_events_per_s'] / 1e3:>8.1f}k ev/s"
        f"  {results['speedup_geomean']:>5.2f}x geomean"
    )
    return "\n".join(lines)


def validate_document(doc: dict) -> None:
    """Schema check for BENCH_kernel.json (used by the CI smoke job)."""
    assert doc["benchmark"] == "kernel"
    assert doc["schema"] == BENCH_SCHEMA
    assert set(doc["config"]["workloads"]) == set(BASELINE_EVENTS_PER_S)
    workloads = doc["results"]["workloads"]
    assert set(workloads) == set(BASELINE_EVENTS_PER_S)
    for name, m in workloads.items():
        for key in (
            "events", "wall_s", "events_per_s", "baseline_events_per_s",
            "speedup",
        ):
            assert key in m, f"{name} missing {key}"
        assert m["events"] > 0 and m["wall_s"] > 0
    for key in (
        "total_events", "total_wall_s", "aggregate_events_per_s",
        "speedup_geomean",
    ):
        assert key in doc["results"], f"results missing {key}"


# -- pytest entry points -----------------------------------------------------


def test_quick_suite_reports_all_workloads():
    measurements = run_suite(scale=0.05, repeats=1)
    doc = bench_document(0.05, 1, measurements)
    validate_document(doc)


def test_workloads_are_deterministic_in_events():
    """Same scale, same event count — the kernel schedules identically."""
    for name, fn in WORKLOADS:
        first = events_scheduled(fn(0.05))
        second = events_scheduled(fn(0.05))
        assert first == second, f"{name} event count drifted"


def test_committed_document_matches_schema():
    path = REPO_ROOT / "BENCH_kernel.json"
    doc = json.loads(path.read_text(encoding="utf-8"))
    validate_document(doc)


def main(argv=None):
    """Entry point: ``python benchmarks/bench_kernel.py [--quick]``."""
    import argparse

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true",
        help="reduced scale, one repeat; skips writing BENCH_kernel.json",
    )
    parser.add_argument(
        "--repeats", type=int, default=5,
        help="runs per workload; the best wall time is kept (default 5)",
    )
    args = parser.parse_args(argv)
    scale = 0.1 if args.quick else 1.0
    repeats = 1 if args.quick else args.repeats
    measurements = run_suite(scale, repeats)
    doc = bench_document(scale, repeats, measurements)
    validate_document(doc)
    print(bench_table(doc))
    if not args.quick:
        (REPO_ROOT / "BENCH_kernel.json").write_text(
            json.dumps(doc, indent=2) + "\n", encoding="utf-8"
        )
        print(f"wrote {REPO_ROOT / 'BENCH_kernel.json'}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
