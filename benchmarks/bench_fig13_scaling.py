"""Benchmark E3: the paper's dataset-scaling experiment (Fig 13a-d)."""

from repro.experiments import run_fig13a, run_fig13b, run_fig13c, run_fig13d


def _by_x(report, series):
    return {row.x: row.measured for row in report.series(series)}


def test_fig13a_dice_scaling(benchmark, record_report):
    report = benchmark.pedantic(run_fig13a, rounds=1, iterations=1)
    record_report(report)
    script = _by_x(report, "script")
    workflow = _by_x(report, "workflow")
    # Paper: workflow wins at every size; the gap widens with scale
    # (37% at 10 pairs -> 122% at 200 pairs).
    for size in script:
        assert workflow[size] < script[size]
    gap_small = script[10] / workflow[10]
    gap_large = script[200] / workflow[200]
    assert gap_large > gap_small
    assert gap_large > 1.8  # paper: 2.22x


def test_fig13b_wef_scaling(benchmark, record_report):
    report = benchmark.pedantic(run_fig13b, rounds=1, iterations=1)
    record_report(report)
    script = _by_x(report, "script")
    workflow = _by_x(report, "workflow")
    # Paper: both linear and within ~3% of each other.
    for size in script:
        assert abs(script[size] - workflow[size]) / script[size] < 0.06
    # Linearity: time per tweet roughly constant.
    slope_low = (script[300] - script[200]) / 100
    slope_high = (script[400] - script[300]) / 100
    assert abs(slope_low - slope_high) / slope_low < 0.25


def test_fig13c_kge_scaling(benchmark, record_report):
    report = benchmark.pedantic(run_fig13c, rounds=1, iterations=1)
    record_report(report)
    script = _by_x(report, "script")
    workflow = _by_x(report, "workflow")
    # Paper: script wins KGE at both scales (workflow 28-33% slower).
    for size in script:
        assert script[size] < workflow[size]
    assert 1.2 < workflow[6800] / script[6800] < 1.7  # paper 1.50
    assert 1.2 < workflow[68000] / script[68000] < 1.7  # paper 1.38


def test_fig13d_gotta_scaling(benchmark, record_report):
    report = benchmark.pedantic(run_fig13d, rounds=1, iterations=1)
    record_report(report)
    script = _by_x(report, "script")
    workflow = _by_x(report, "workflow")
    # Paper: workflow 2.5-3.1x faster at every size.
    for size in script:
        assert script[size] / workflow[size] > 2.0
    # Sub-linear script growth (fixed model/object-store costs).
    assert script[16] < 16 * script[1]
