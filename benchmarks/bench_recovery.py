"""Benchmark: recovery cost under deterministic fault injection.

Runs the quick ``recovery`` experiment configuration (DICE at 40 file
pairs, GOTTA at 1 paragraph, script + workflow), checks the two
determinism guarantees the subsystem makes —

* a fixed-seed schedule produces the *identical* virtual-time recovery
  timeline on every run, and
* every fault-injected run completes with output identical to the
  clean run —

and records the clean/faulted/overhead table.  Uses plain pytest (no
``benchmark`` fixture), so CI can smoke it with nothing but pytest:

    PYTHONPATH=src python -m pytest benchmarks/bench_recovery.py -q
"""

from repro.datasets import generate_maccrobat
from repro.experiments.exp_recovery import run_recovery
from repro.faults import FaultSchedule, faults_injected
from repro.tasks import fresh_cluster
from repro.tasks.dice import run_dice_script, run_dice_workflow

QUICK_DOCS = 40
QUICK_PARAGRAPHS = 1
SEED = 11


def _timeline(injector, run):
    return (run.elapsed_s, injector.injected, injector.retries, injector.skipped)


def test_recovery_timeline_is_deterministic():
    """Same seed, same workload -> bit-identical recovery timeline."""
    reports = generate_maccrobat(num_docs=QUICK_DOCS, seed=7)
    clean = run_dice_script(fresh_cluster(), reports, num_cpus=4)
    schedule = FaultSchedule.generate(
        seed=SEED,
        horizon_s=clean.elapsed_s * 0.8,
        tasks=2,
        nodes=1,
        links=1,
        replicas=1,
    )
    timelines = []
    for _ in range(2):
        with faults_injected(schedule) as injector:
            script = run_dice_script(fresh_cluster(), reports, num_cpus=4)
        timelines.append(_timeline(injector, script))
        with faults_injected(schedule) as injector:
            workflow = run_dice_workflow(fresh_cluster(), reports)
        timelines.append(_timeline(injector, workflow))
    assert timelines[0] == timelines[2], "script recovery timeline diverged"
    assert timelines[1] == timelines[3], "workflow recovery timeline diverged"
    assert timelines[0][0] > clean.elapsed_s, "faults charged no recovery time"


def test_recovery_cost_quick(results_dir):
    """Measure recovery overhead per paradigm; outputs stay correct.

    ``run_recovery`` raises if any fault-injected run's output differs
    from the clean run's, so passing is itself the correctness oracle.
    """
    report = run_recovery(num_docs=QUICK_DOCS, num_paragraphs=QUICK_PARAGRAPHS)
    for task in ("dice", "gotta"):
        script = [r for r in report.rows if r.series == "script-overhead" and r.x == task]
        workflow = [
            r for r in report.rows if r.series == "workflow-overhead" and r.x == task
        ]
        assert script and workflow
        assert script[0].measured >= 0.0
        assert workflow[0].measured >= 0.0
    (results_dir / "recovery.txt").write_text(
        report.to_text() + "\n", encoding="utf-8"
    )
    print()
    print(report.to_text())
