"""Benchmark: memory pressure — RAM size x policy -> outcome.

Sweeps per-node RAM from ample down to the largest single allocation
and runs each size under both policies (dormant = the seed's hard
failure, spill = the :mod:`repro.mem` LRU spill + backpressure
policy), recording wall time, spill count and peak RSS.  Also checks
the subsystem's two guarantees —

* on a RAM size where the dormant run dies with
  :class:`InsufficientResources`, the spill policy completes every
  task with output identical to the clean run, and
* pressured runs are deterministic: same config, same workload ->
  bit-identical virtual time and spill counts —

Uses plain pytest (no ``benchmark`` fixture) so CI can smoke it with
nothing but pytest, or directly:

    PYTHONPATH=src python benchmarks/bench_memory.py --quick
"""

import sys
from dataclasses import replace

from repro.config import MemoryConfig, default_config
from repro.datasets import generate_fsqa, generate_maccrobat
from repro.errors import InsufficientResources
from repro.experiments.exp_memory import run_memory
from repro.mem import format_size
from repro.tasks import fresh_cluster
from repro.tasks.dice import run_dice_script
from repro.tasks.gotta import run_gotta_script

QUICK_DOCS = 40
QUICK_PARAGRAPHS = 1


def _probe(run_fn):
    """Clean run -> (elapsed, peak RSS, largest single allocation)."""
    cluster = fresh_cluster()
    run = run_fn(cluster)
    peak = max(node.ram_peak for node in cluster._nodes.values())
    largest = max(node.largest_alloc for node in cluster._nodes.values())
    return run, peak, largest


def _pressure_outcome(run_fn, ram, enabled):
    """One ladder cell: (status, elapsed, spills, peak RSS)."""
    config = replace(
        default_config(),
        memory=MemoryConfig(enabled=enabled, node_ram_bytes=ram),
    )
    cluster = fresh_cluster(config)
    try:
        run = run_fn(cluster)
    except InsufficientResources:
        return "died", None, None, None
    peak = max(node.ram_peak for node in cluster._nodes.values())
    return "ok", run.elapsed_s, cluster.memory.spill_count, peak


def ram_ladder_table(run_fn, title):
    """RAM size x policy table for one task (the benchmark artifact)."""
    clean, peak, largest = _probe(run_fn)
    sizes = [
        ("ample", None),
        ("peak", peak),
        ("midpoint", (peak + largest) // 2),
        ("floor", largest),
    ]
    lines = [
        f"memory ladder: {title} (clean {clean.elapsed_s:.2f}s, "
        f"peak {format_size(peak)}, largest alloc {format_size(largest)})",
        f"{'ram/node':>10}  {'policy':<8} {'outcome':<8} "
        f"{'wall (s)':>10} {'spills':>7} {'peak rss':>10}",
    ]
    cells = {}
    for label, ram in sizes:
        for policy, enabled in (("dormant", False), ("spill", True)):
            status, elapsed, spills, rss = _pressure_outcome(run_fn, ram, enabled)
            cells[(label, policy)] = status
            shown = format_size(ram) if ram is not None else "ample"
            if status == "ok":
                lines.append(
                    f"{shown:>10}  {policy:<8} {'ok':<8} "
                    f"{elapsed:>10.2f} {spills:>7d} {format_size(rss):>10}"
                )
            else:
                lines.append(
                    f"{shown:>10}  {policy:<8} {'died':<8} "
                    f"{'-':>10} {'-':>7} {'-':>10}"
                )
    return "\n".join(lines), cells


def test_pressured_run_is_deterministic():
    """Same memory config, same workload -> bit-identical timeline."""
    paragraphs = generate_fsqa(num_paragraphs=QUICK_PARAGRAPHS, seed=17)
    _, peak, largest = _probe(
        lambda cl: run_gotta_script(cl, paragraphs, num_cpus=4)
    )
    ram = (peak + largest) // 2
    outcomes = []
    for _ in range(2):
        outcomes.append(
            _pressure_outcome(
                lambda cl: run_gotta_script(cl, paragraphs, num_cpus=4),
                ram,
                enabled=True,
            )
        )
    assert outcomes[0] == outcomes[1], "pressured timeline diverged"
    assert outcomes[0][0] == "ok" and outcomes[0][2] > 0


def test_ram_ladder_dice(results_dir):
    """Dormant dies below peak; the spill policy completes everywhere."""
    reports = generate_maccrobat(num_docs=QUICK_DOCS, seed=7)
    table, cells = ram_ladder_table(
        lambda cl: run_dice_script(cl, reports, num_cpus=4), "dice/script-4"
    )
    assert cells[("ample", "dormant")] == "ok"
    assert cells[("midpoint", "dormant")] == "died"
    for label in ("ample", "peak", "midpoint", "floor"):
        assert cells[(label, "spill")] == "ok", f"spill policy died at {label}"
    (results_dir / "memory_ladder.txt").write_text(table + "\n", encoding="utf-8")
    print()
    print(table)


def test_memory_experiment_quick(results_dir):
    """All four tasks: seed dies, policy completes with recorded spills.

    ``run_memory`` raises if the dormant run survives the clamp, if the
    pressured run records no spills, or if its output differs from the
    clean run's — so passing is itself the acceptance check.
    """
    report = run_memory(
        num_docs=QUICK_DOCS,
        num_paragraphs=QUICK_PARAGRAPHS,
        num_candidates=1500,
        universe_size=4000,
        num_tweets=40,
    )
    for task in ("dice", "gotta", "kge", "wef"):
        overhead = [
            r for r in report.rows if r.series == "overhead" and r.x == task
        ]
        assert overhead and overhead[0].measured >= 0.0
    (results_dir / "memory.txt").write_text(report.to_text() + "\n", encoding="utf-8")
    print()
    print(report.to_text())


def main(argv=None):
    """CI smoke entry point: ``python benchmarks/bench_memory.py --quick``."""
    import argparse

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true", help="reduced dataset scales"
    )
    args = parser.parse_args(argv)
    docs = QUICK_DOCS if args.quick else 120
    reports = generate_maccrobat(num_docs=docs, seed=7)
    table, cells = ram_ladder_table(
        lambda cl: run_dice_script(cl, reports, num_cpus=4),
        f"dice/script-4 ({docs} file pairs)",
    )
    print(table)
    if cells[("midpoint", "dormant")] != "died":
        print("FAIL: dormant run survived the midpoint clamp", file=sys.stderr)
        return 1
    failed = [
        label
        for (label, policy), status in cells.items()
        if policy == "spill" and status != "ok"
    ]
    if failed:
        print(f"FAIL: spill policy died at: {', '.join(failed)}", file=sys.stderr)
        return 1
    print("\nmemory smoke OK: dormant dies under pressure, spill completes")
    return 0


if __name__ == "__main__":
    sys.exit(main())
