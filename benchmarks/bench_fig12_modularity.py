"""Benchmark E1: the paper's modularity experiment (Fig 12a + 12b)."""

from repro.experiments import run_fig12a, run_fig12b


def test_fig12a_lines_of_code(benchmark, record_report):
    report = benchmark.pedantic(run_fig12a, rounds=1, iterations=1)
    record_report(report)
    # Qualitative target: both paradigms land in the same order of
    # magnitude, with DICE the largest implementation on both sides
    # (as in the paper's Fig 12a).
    script = {row.x: row.measured for row in report.series("script")}
    workflow = {row.x: row.measured for row in report.series("workflow")}
    assert max(script, key=script.get) == "dice"
    assert max(workflow, key=workflow.get) == "dice"
    for task in ("dice", "wef", "gotta", "kge"):
        assert script[task] > 0
        assert workflow[task] > 0


def test_fig12b_kge_operator_count(benchmark, record_report):
    report = benchmark.pedantic(run_fig12b, rounds=1, iterations=1)
    record_report(report)
    times = {row.x: row.measured for row in report.series("workflow")}
    # Pipelining gain 1 -> 5 operators, diminishing at 6 (paper: 19.7%
    # faster at 5 operators, 0.95% slower again at 6).
    assert times[5] < times[1]
    assert (times[1] - times[5]) / times[1] > 0.05
    assert times[6] >= times[5]
    assert abs(times[6] - times[5]) / times[5] < 0.05
