"""Benchmarks for the extension experiments (beyond the paper)."""

from repro.experiments.exp_extensions import (
    run_dice_extended_scaling,
    run_kge_small_scale_workers,
    run_wef_workers_extension,
)


def _by_x(report, series):
    return {row.x: row.measured for row in report.series(series)}


def test_ext_wef_distributed_workers(benchmark, record_report):
    report = benchmark.pedantic(
        lambda: run_wef_workers_extension(num_tweets=100), rounds=1, iterations=1
    )
    record_report(report)
    distributed = _by_x(report, "distributed model-averaging")
    (sequential,) = report.measured_series("sequential (paper's setting)")
    assert distributed[4] < distributed[2] < distributed[1]
    # Near-linear scaling of the compute-bound part.
    assert distributed[1] / distributed[4] > 2.5
    # One distributed worker ~ the sequential baseline (same math).
    assert abs(distributed[1] - sequential) / sequential < 0.1


def test_ext_dice_extended_scaling(benchmark, record_report):
    report = benchmark.pedantic(
        lambda: run_dice_extended_scaling(sizes=(200, 400)), rounds=1, iterations=1
    )
    record_report(report)
    script = _by_x(report, "script")
    workflow = _by_x(report, "workflow")
    # Linearity persists beyond the paper's range...
    assert 1.8 < script[400] / script[200] < 2.2
    # ...and the workflow's lead converges toward the marginal ratio.
    assert 1.9 < script[400] / workflow[400] < 2.6


def test_ext_kge_small_scale_workers(benchmark, record_report):
    report = benchmark.pedantic(
        lambda: run_kge_small_scale_workers(), rounds=1, iterations=1
    )
    record_report(report)
    script = _by_x(report, "script")
    workflow = _by_x(report, "workflow")
    # The script wins at every worker count at this scale...
    for count in (1, 2, 4):
        assert script[count] < workflow[count]
    # ...and its lead GROWS with workers: the workflow's fixed
    # table-install cost does not parallelize, so it looms larger as
    # the per-tuple work shrinks.
    assert (workflow[4] - script[4]) / script[4] > (
        workflow[1] - script[1]
    ) / script[1]
