"""Benchmark: job-service throughput and queueing latency under load.

Floods the :class:`repro.jobs.JobService` with a short, violent
Poisson burst — arrivals far above the cluster's drain rate, so the
queue backs up past 1000 concurrently queued jobs — then lets it
drain, and records:

* sustained throughput, both virtual (completed jobs per virtual
  second) and wall-clock (jobs processed per real second of control-
  plane work — the service overhead an analyst pays per job);
* p50/p99 queueing latency (submission to admission, virtual time);
* peak queue depth, which must reach the >=1000 acceptance bar.

Results go to ``BENCH_jobs.json`` at the repository root, the first of
ROADMAP's tracked ``BENCH_*.json`` series.  The schema is stable on
purpose — ``benchmark`` / ``schema`` / ``config`` / ``results`` — so
later kernel benchmarks can reuse it and dashboards can diff runs.

Also checks the subsystem's determinism contract (same config, same
summary, bit for bit) and the drain invariant (every submitted job
reaches a terminal state).

Uses plain pytest so CI can smoke it with nothing but pytest, or
directly:

    PYTHONPATH=src python benchmarks/bench_jobs.py --quick
"""

import json
import sys
import time
from pathlib import Path

from repro.config import GIB, JobsConfig
from repro.jobs import JobService

#: Repository root: where BENCH_jobs.json lands (tracked by git).
REPO_ROOT = Path(__file__).resolve().parent.parent

#: Schema version of BENCH_jobs.json; bump on incompatible changes.
BENCH_SCHEMA = 1

#: The flood: ~1450 arrivals in a 12s window against a cluster that
#: drains ~16 jobs/s (32 worker vCPUs / 2 vCPUs per ~1s job), so the
#: backlog must climb past the 1000-job acceptance bar before draining.
FLOOD = JobsConfig(
    enabled=True,
    seed=42,
    rate_per_s=120.0,
    horizon_s=12.0,
    tenants=8,
    cpus=2,
    ram_bytes=1 * GIB,
    duration_s=1.0,
)

#: Reduced scale for CI smoke (--quick): same shape, ~300 jobs.
FLOOD_QUICK = JobsConfig(
    enabled=True,
    seed=42,
    rate_per_s=60.0,
    horizon_s=5.0,
    tenants=4,
    cpus=2,
    ram_bytes=1 * GIB,
    duration_s=0.5,
)


def run_flood(config: JobsConfig):
    """One full traffic run; returns (summary, wall_seconds)."""
    service = JobService(config)
    started = time.perf_counter()
    summary = service.simulate()
    wall_s = time.perf_counter() - started
    assert service.queue.drained, "jobs left in a non-terminal state"
    return summary, wall_s


def bench_document(config: JobsConfig, summary, wall_s: float) -> dict:
    """The stable BENCH_jobs.json document."""
    return {
        "benchmark": "jobs",
        "schema": BENCH_SCHEMA,
        "config": {
            "seed": config.seed,
            "rate_per_s": config.rate_per_s,
            "horizon_s": config.horizon_s,
            "tenants": config.tenants,
            "policy": config.policy,
            "placement": config.placement,
            "cpus": config.cpus,
            "ram_bytes": config.ram_bytes,
            "duration_s": config.duration_s,
        },
        "results": {
            "jobs": summary["jobs"],
            "completed": summary["counts"]["completed"],
            "virtual_jobs_per_s": summary["virtual_jobs_per_s"],
            "wall_jobs_per_s": (
                summary["jobs"] / wall_s if wall_s > 0 else None
            ),
            "p50_queue_s": summary["p50_queue_s"],
            "p99_queue_s": summary["p99_queue_s"],
            "peak_queue_depth": summary["peak_queue_depth"],
            "virtual_makespan_s": summary["virtual_makespan_s"],
            "wall_s": wall_s,
        },
    }


def bench_table(doc: dict) -> str:
    results = doc["results"]
    return "\n".join(
        [
            "job service under flood (virtual seconds unless noted)",
            f"  jobs               {results['jobs']} submitted, "
            f"{results['completed']} completed",
            f"  peak queue depth   {results['peak_queue_depth']}",
            f"  throughput         {results['virtual_jobs_per_s']:.1f} jobs/s "
            f"virtual, {results['wall_jobs_per_s']:.0f} jobs/s wall",
            f"  queue latency      p50 {results['p50_queue_s']:.3f}s, "
            f"p99 {results['p99_queue_s']:.3f}s",
            f"  makespan           {results['virtual_makespan_s']:.2f}s virtual, "
            f"{results['wall_s']:.2f}s wall",
        ]
    )


# -- pytest entry points -----------------------------------------------------


def test_flood_sustains_1000_queued_jobs_and_drains(results_dir):
    """The acceptance bar: >=1000 concurrently queued jobs, full drain,
    and the recorded BENCH_jobs.json at the repository root."""
    summary, wall_s = run_flood(FLOOD)
    assert summary["peak_queue_depth"] >= 1000, (
        f"peak queue depth only {summary['peak_queue_depth']}"
    )
    assert summary["counts"]["completed"] == summary["jobs"]
    assert summary["p99_queue_s"] >= summary["p50_queue_s"] > 0.0
    doc = bench_document(FLOOD, summary, wall_s)
    (REPO_ROOT / "BENCH_jobs.json").write_text(
        json.dumps(doc, indent=2) + "\n", encoding="utf-8"
    )
    (results_dir / "jobs_flood.txt").write_text(
        bench_table(doc) + "\n", encoding="utf-8"
    )
    print()
    print(bench_table(doc))


def test_flood_is_deterministic():
    """Same config, same summary — bit for bit (wall time aside)."""
    first, _ = run_flood(FLOOD_QUICK)
    second, _ = run_flood(FLOOD_QUICK)
    assert first == second


def main(argv=None):
    """CI smoke entry point: ``python benchmarks/bench_jobs.py --quick``."""
    import argparse

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true",
        help="reduced flood; skips writing BENCH_jobs.json",
    )
    args = parser.parse_args(argv)
    config = FLOOD_QUICK if args.quick else FLOOD
    summary, wall_s = run_flood(config)
    doc = bench_document(config, summary, wall_s)
    print(bench_table(doc))
    if summary["counts"]["completed"] != summary["jobs"]:
        print("FAIL: not every job completed", file=sys.stderr)
        return 1
    if not args.quick:
        if summary["peak_queue_depth"] < 1000:
            print(
                f"FAIL: peak queue depth {summary['peak_queue_depth']} < 1000",
                file=sys.stderr,
            )
            return 1
        (REPO_ROOT / "BENCH_jobs.json").write_text(
            json.dumps(doc, indent=2) + "\n", encoding="utf-8"
        )
        print(f"\nwrote {REPO_ROOT / 'BENCH_jobs.json'}")
    print("jobs smoke OK: queue drained, every job terminal")
    return 0


if __name__ == "__main__":
    sys.exit(main())
