"""Shared helpers for the experiment benchmarks."""

from __future__ import annotations

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> pathlib.Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture
def record_report(results_dir, benchmark):
    """Save an ExperimentReport to disk and attach it to the benchmark."""

    def _record(report):
        (results_dir / f"{report.experiment_id}.txt").write_text(
            report.to_text() + "\n", encoding="utf-8"
        )
        benchmark.extra_info["experiment"] = report.experiment_id
        max_err = report.max_relative_error()
        if max_err is not None:
            benchmark.extra_info["max_relative_error"] = round(max_err, 3)
        print()
        print(report.to_text())
        return report

    return _record
