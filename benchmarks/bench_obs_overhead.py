"""Benchmark: real-time overhead of the observability layer.

Runs the quick Fig 13a configuration (DICE at 10 and 40 report pairs,
script + workflow) twice — once with the default null tracer and once
with a full tracer installed — and reports the wall-clock cost of
tracing.  Virtual timings are asserted bit-identical either way; only
host time may differ.
"""

import time

from repro.experiments.exp_scaling import run_fig13a
from repro.obs import Tracer, tracing

QUICK_SIZES = (10, 40)


def _timings(report):
    return [(row.series, row.x, row.measured) for row in report.rows]


def _run_quick():
    return run_fig13a(sizes=QUICK_SIZES)


def test_tracer_overhead_on_fig13a_quick(benchmark, results_dir):
    baseline_start = time.perf_counter()
    baseline_report = _run_quick()
    baseline_wall = time.perf_counter() - baseline_start

    tracer = Tracer()

    def traced():
        with tracing(tracer):
            return _run_quick()

    traced_report = benchmark.pedantic(traced, rounds=1, iterations=1)

    # Tracing must not perturb simulated time at all.
    assert _timings(traced_report) == _timings(baseline_report)
    assert len(tracer.spans) > 0

    traced_wall = benchmark.stats.stats.mean
    overhead = traced_wall / baseline_wall if baseline_wall > 0 else float("nan")
    benchmark.extra_info["baseline_wall_s"] = round(baseline_wall, 4)
    benchmark.extra_info["traced_wall_s"] = round(traced_wall, 4)
    benchmark.extra_info["overhead_x"] = round(overhead, 3)
    benchmark.extra_info["spans"] = len(tracer.spans)

    lines = [
        "obs-overhead: fig13a --quick (DICE sizes 10, 40)",
        f"tracer off   {baseline_wall * 1e3:8.1f} ms wall",
        f"tracer on    {traced_wall * 1e3:8.1f} ms wall"
        f"  ({len(tracer.spans)} spans recorded)",
        f"overhead     {overhead:8.2f}x",
        "virtual timings: bit-identical with tracer on and off",
    ]
    (results_dir / "obs-overhead.txt").write_text(
        "\n".join(lines) + "\n", encoding="utf-8"
    )
    print()
    print("\n".join(lines))
