"""Micro-benchmarks of the library itself (real wall-clock time).

Unlike the experiment benchmarks (which report *virtual* seconds),
these measure how fast the simulator executes on the host — the number
that matters to someone extending this repository.  pytest-benchmark
runs them with real rounds.
"""

from repro.cluster import build_cluster
from repro.datasets import generate_maccrobat
from repro.relational import FieldType, Schema, Table, column_greater, hash_join
from repro.rayx import run_script
from repro.sim import Environment
from repro.workflow import Workflow, run_workflow
from repro.workflow.operators import FilterOperator, SinkOperator, TableSource

SCHEMA = Schema.of(id=FieldType.INT, score=FieldType.FLOAT)
TABLE = Table.from_rows(SCHEMA, [[i, (i % 10) / 10.0] for i in range(5000)])


def test_engine_throughput_filter_chain(benchmark):
    """5k tuples through a 3-stage filter chain."""

    def run():
        wf = Workflow("micro")
        src = wf.add_operator(TableSource("src", TABLE))
        previous = src
        for index in range(3):
            op = wf.add_operator(
                FilterOperator(f"f{index}", column_greater("score", -1))
            )
            wf.link(previous, op)
            previous = op
        sink = wf.add_operator(SinkOperator("sink"))
        wf.link(previous, sink)
        return run_workflow(build_cluster(Environment()), wf)

    result = benchmark(run)
    assert len(result.table()) == 5000


def test_simulation_kernel_event_rate(benchmark):
    """Raw kernel throughput: 30k timeout events."""

    def run():
        env = Environment()

        def ticker(env):
            for _ in range(30_000):
                yield env.timeout(0.001)

        env.run(until=env.process(ticker(env)))
        return env.now

    now = benchmark(run)
    assert now > 29.0


def test_rayx_task_dispatch_rate(benchmark):
    """500 trivial remote tasks through the scheduler."""

    def noop(ctx):
        return None

    def run():
        def driver(rt):
            refs = [rt.submit(noop) for _ in range(500)]
            yield from rt.get_all(refs)
            return rt.tasks_completed

        return run_script(build_cluster(Environment()), driver, num_cpus=8)

    assert benchmark(run) == 500


def test_relational_hash_join_speed(benchmark):
    left_schema = Schema.of(k=FieldType.INT, a=FieldType.INT)
    right_schema = Schema.of(k=FieldType.INT, b=FieldType.INT)
    left = Table.from_rows(left_schema, [[i % 997, i] for i in range(20_000)])
    right = Table.from_rows(right_schema, [[i % 997, i] for i in range(5_000)])

    out = benchmark(hash_join, left, right, "k", "k")
    assert len(out) > 0


def test_maccrobat_generation_speed(benchmark):
    reports = benchmark(generate_maccrobat, 50, 7)
    assert len(reports) == 50
