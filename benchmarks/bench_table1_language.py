"""Benchmark E2: the paper's language-efficiency experiment (Table I)."""

from repro.experiments import run_table1


def test_table1_scala_vs_python_operators(benchmark, record_report):
    report = benchmark.pedantic(run_table1, rounds=1, iterations=1)
    record_report(report)
    scala = {row.x: row.measured for row in report.series("scala-operators")}
    python = {row.x: row.measured for row in report.series("python-operators")}
    # Paper: Scala 28% faster at 6.8k, only ~1% faster at 68k.
    small_gain = (python[6800] - scala[6800]) / scala[6800]
    large_gain = (python[68000] - scala[68000]) / scala[68000]
    assert scala[6800] < python[6800]
    assert small_gain > 0.10
    assert -0.02 < large_gain < 0.05
    assert large_gain < small_gain
