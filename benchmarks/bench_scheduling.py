"""Benchmark: placement-policy cost on the model-heavy tasks.

Runs KGE (375 MB model) and GOTTA (1.59 GB model) four-way parallel
under each placement policy and checks the two claims ``repro.sched``
makes —

* the ``locality`` policy measurably reduces object-store transfer
  time versus the seed's ``round_robin`` (tasks follow the model
  replica instead of pulling a copy to every node), and
* placement is deterministic: the same policy replays the identical
  virtual-time timeline, and every policy produces identical outputs —

and records the policy-comparison table.  Uses plain pytest (no
``benchmark`` fixture), so CI can smoke it with nothing but pytest:

    PYTHONPATH=src python -m pytest benchmarks/bench_scheduling.py -q
"""

from repro.datasets import generate_fsqa
from repro.experiments.exp_scheduling import run_scheduling
from repro.experiments.harness import cached_kge_dataset
from repro.obs import Tracer, tracing
from repro.sched import POLICIES, scheduling
from repro.tasks import fresh_cluster
from repro.tasks.gotta import run_gotta_script
from repro.tasks.kge import run_kge_script

QUICK_CANDIDATES = 1500
QUICK_UNIVERSE = 4000
QUICK_PARAGRAPHS = 4
NUM_CPUS = 4


def _script_cases():
    dataset = cached_kge_dataset(QUICK_CANDIDATES, universe_size=QUICK_UNIVERSE)
    paragraphs = generate_fsqa(num_paragraphs=QUICK_PARAGRAPHS, seed=17)
    return [
        ("kge", lambda tracer: run_kge_script(
            fresh_cluster(tracer=tracer), dataset, num_cpus=NUM_CPUS
        )),
        ("gotta", lambda tracer: run_gotta_script(
            fresh_cluster(tracer=tracer), paragraphs, num_cpus=NUM_CPUS
        )),
    ]


def _transfer_telemetry(policy, run_fn):
    """(transfer seconds, transfer count, output rows, elapsed)."""
    tracer = Tracer()
    with scheduling(policy), tracing(tracer):
        run = run_fn(tracer)
    return (
        tracer.metrics.total("objectstore.transfer.seconds"),
        tracer.metrics.total("objectstore.transfer.count"),
        sorted(tuple(row.values) for row in run.output.rows),
        run.elapsed_s,
    )


def test_locality_reduces_model_transfer_time(results_dir):
    """locality moves tasks to the model; round_robin moves the model.

    Under ``round_robin`` the 4-way task fan-out pulls a model replica
    to every worker (4 inter-node transfers); under ``locality`` the
    burst converges on one node and the object store's in-flight dedup
    collapses the fetches into a single transfer.
    """
    lines = []
    for task, run_fn in _script_cases():
        rr_s, rr_n, rr_rows, _ = _transfer_telemetry("round_robin", run_fn)
        loc_s, loc_n, loc_rows, _ = _transfer_telemetry("locality", run_fn)
        assert loc_rows == rr_rows, f"{task}: locality changed the output"
        assert rr_n > 0, f"{task}: round_robin performed no transfers"
        assert loc_n < rr_n, (
            f"{task}: locality did not reduce transfer count "
            f"({loc_n} vs {rr_n})"
        )
        assert loc_s < rr_s, (
            f"{task}: locality did not reduce transfer seconds "
            f"({loc_s:.3f}s vs {rr_s:.3f}s)"
        )
        lines.append(
            f"{task}: round_robin {rr_n:.0f} transfers / {rr_s:.2f}s, "
            f"locality {loc_n:.0f} transfers / {loc_s:.2f}s"
        )
    (results_dir / "scheduling_transfers.txt").write_text(
        "\n".join(lines) + "\n", encoding="utf-8"
    )
    print()
    print("\n".join(lines))


def test_policy_timelines_are_deterministic():
    """Same policy, same workload -> bit-identical timeline."""
    for task, run_fn in _script_cases():
        for policy in POLICIES:
            first = _transfer_telemetry(policy, run_fn)
            second = _transfer_telemetry(policy, run_fn)
            assert first == second, f"{task}/{policy}: timeline diverged"


def test_scheduling_table_quick(results_dir):
    """Record the full policy-comparison table (quick scales).

    ``run_scheduling`` raises if any policy's output differs from the
    reference, so passing is itself the correctness oracle.
    """
    report = run_scheduling(
        num_candidates=QUICK_CANDIDATES,
        universe_size=QUICK_UNIVERSE,
        num_paragraphs=QUICK_PARAGRAPHS,
    )
    policies = {row.x for row in report.rows}
    assert policies == set(POLICIES)
    (results_dir / "scheduling.txt").write_text(
        report.to_text() + "\n", encoding="utf-8"
    )
    print()
    print(report.to_text())
